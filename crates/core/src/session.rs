//! A self-contained, movable LASER run.
//!
//! [`LaserSession`] owns every piece of the deployment of the paper's
//! Figure 8 — the simulated machine, the kernel driver + PMU, the user-space
//! detector and (once triggered) the repair instrumentation. Nothing inside
//! is shared behind `Rc`/`RefCell`, so a session is `Send`: it can be built
//! on one thread, moved to a worker, and driven to completion there. That is
//! the property `laser-bench`'s campaign runner relies on to fan whole
//! `workload × tool` experiment grids across a thread pool.
//!
//! The session advances in *poll quanta*: the application runs
//! `poll_interval_steps` instructions, then the driver services the PMU and
//! the detector consumes the new records — exactly the cadence of the
//! monolithic loop this type was extracted from.

use laser_machine::machine::MachineError;
use laser_machine::{Machine, MachineConfig, RunStatus, WorkloadImage};
use laser_pebs::driver::Driver;
use laser_pebs::imprecision::ImprecisionModel;
use laser_pebs::pmu::{Pmu, PmuConfig};

use crate::config::LaserConfig;
use crate::detect::Detector;
use crate::repair::{RepairPlan, SsbHook};
use crate::system::{LaserError, LaserOutcome, RepairSummary};

/// An in-flight LASER run: application, driver, detector and (optionally)
/// repair, as one owned value.
#[derive(Debug)]
pub struct LaserSession {
    config: LaserConfig,
    machine: Machine,
    driver: Driver,
    detector: Detector,
    workload: String,
    num_cores: usize,
    max_steps: u64,
    detector_cycles: u64,
    repair: Option<RepairSummary>,
}

impl LaserSession {
    /// Set up a run of `image` under LASER on a machine with `machine_config`.
    pub fn new(config: LaserConfig, image: &WorkloadImage, machine_config: MachineConfig) -> Self {
        let max_steps = machine_config.max_steps;
        let num_cores = machine_config.num_cores;
        let machine = Machine::new(machine_config, image);

        let program = image.program();
        let code_range = (program.base_pc(), program.end_pc());
        let model = ImprecisionModel::new(
            config.imprecision,
            image.memory_map(),
            code_range,
            config.seed,
        );
        let pmu = Pmu::new(
            PmuConfig {
                sav: config.sav,
                num_cores,
                ..Default::default()
            },
            model,
        );
        let driver = Driver::new(pmu, config.driver);
        let detector = Detector::new(&config, program, image.memory_map());

        LaserSession {
            config,
            machine,
            driver,
            detector,
            workload: image.name().to_string(),
            num_cores,
            max_steps,
            detector_cycles: 0,
            repair: None,
        }
    }

    /// The machine being monitored.
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// The detector's live state.
    pub fn detector(&self) -> &Detector {
        &self.detector
    }

    /// Whether LASERREPAIR has been attached.
    pub fn repair_triggered(&self) -> bool {
        self.repair.is_some()
    }

    /// Run one poll quantum: `poll_interval_steps` application instructions,
    /// one driver poll, one detector batch, and — when the false-sharing rate
    /// crosses the threshold — the repair attachment decision.
    ///
    /// # Errors
    /// Returns an error if the machine exhausts its step budget.
    pub fn advance(&mut self) -> Result<RunStatus, LaserError> {
        let status = self.machine.run_steps(self.config.poll_interval_steps);
        self.driver.poll(&mut self.machine);
        let records = self.driver.read_records();
        if !records.is_empty() {
            self.detector.process(&records);
            let cycles = self.detector.processing_cycles(records.len());
            self.detector_cycles += cycles;
            let per_core = cycles / self.num_cores as u64;
            if per_core > 0 {
                self.machine.charge_all_cores(per_core);
            }
        }

        if self.config.enable_repair && self.repair.is_none() {
            self.maybe_attach_repair();
        }

        if status == RunStatus::Running && self.machine.steps() >= self.max_steps {
            return Err(LaserError::Machine(MachineError::MaxStepsExceeded {
                steps: self.max_steps,
            }));
        }
        Ok(status)
    }

    /// Check the repair trigger and attach the SSB instrumentation when a
    /// profitable plan exists.
    fn maybe_attach_repair(&mut self) {
        let elapsed = self.machine.elapsed_benchmark_seconds();
        let pcs = self
            .detector
            .repair_trigger_pcs(elapsed, self.config.repair_rate_threshold);
        if pcs.is_empty() {
            return;
        }
        let Some(plan) = RepairPlan::analyze(
            self.machine.program(),
            &pcs,
            self.config.min_stores_per_flush,
            self.config.max_plan_blocks,
        ) else {
            return;
        };
        if !plan.profitable {
            return;
        }
        let hook = SsbHook::new(plan.clone(), self.num_cores);
        self.repair = Some(RepairSummary {
            triggered_at_cycle: self.machine.cycles(),
            plan,
            stats: hook.stats(),
        });
        self.machine.attach_hook(Box::new(hook));
    }

    /// Drive the session to completion.
    ///
    /// # Errors
    /// Returns an error if the machine exhausts its step budget.
    pub fn run(mut self) -> Result<LaserOutcome, LaserError> {
        loop {
            if self.advance()? == RunStatus::Done {
                return Ok(self.finish());
            }
        }
    }

    /// Flush what is still buffered in the PEBS hardware, fold the repair
    /// hook's final counters into the summary, and produce the outcome.
    pub fn finish(mut self) -> LaserOutcome {
        self.driver.poll(&mut self.machine);
        self.driver.flush();
        let records = self.driver.read_records();
        if !records.is_empty() {
            self.detector.process(&records);
            self.detector_cycles += self.detector.processing_cycles(records.len());
        }

        if let Some(summary) = self.repair.as_mut() {
            // The hook owns its statistics; read them back out of the machine.
            if let Some(ssb) = self
                .machine
                .hook()
                .and_then(|h| h.as_any())
                .and_then(|a| a.downcast_ref::<SsbHook>())
            {
                summary.stats = ssb.stats();
            }
        }

        let elapsed = self.machine.elapsed_benchmark_seconds();
        let report = self.detector.report(
            &self.workload,
            elapsed,
            self.config.rate_threshold_hitm_per_sec,
            self.repair.is_some(),
        );
        LaserOutcome {
            report,
            run: self.machine.result(),
            driver_stats: self.driver.stats(),
            detector_cycles: self.detector_cycles,
            repair: self.repair,
            elapsed_benchmark_seconds: elapsed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The whole point of the session refactor: a full LASER run is one owned
    /// value that can move across threads.
    #[test]
    fn session_and_its_pieces_are_send() {
        fn assert_send<T: Send>() {}
        assert_send::<LaserSession>();
        assert_send::<Machine>();
        assert_send::<Driver>();
        assert_send::<Detector>();
        assert_send::<LaserOutcome>();
    }

    #[test]
    fn session_run_on_a_worker_thread_matches_inline_run() {
        use laser_isa::inst::{Operand, Reg};
        use laser_isa::ProgramBuilder;
        use laser_machine::ThreadSpec;

        let mut b = ProgramBuilder::new("xthread");
        b.source("xthread.c", 4);
        let body = b.block("body");
        let exit = b.block("exit");
        b.switch_to(body);
        b.mem_add(Reg(0), 0, Operand::Imm(1), 8);
        b.addi(Reg(2), Reg(2), 1);
        b.cmp_lt(Reg(3), Reg(2), Operand::Imm(1500));
        b.branch(Reg(3), body, exit);
        b.switch_to(exit);
        b.halt();
        let program = b.finish();
        let mut image = laser_machine::WorkloadImage::new("xthread", program);
        let base = image.layout_mut().heap_alloc(64, 64).unwrap();
        image.push_thread(ThreadSpec::new("t0", "body").with_reg(Reg(0), base));
        image.push_thread(ThreadSpec::new("t1", "body").with_reg(Reg(0), base + 8));

        let config = LaserConfig::default();
        let inline = LaserSession::new(config.clone(), &image, MachineConfig::default())
            .run()
            .unwrap();

        let session = LaserSession::new(config, &image, MachineConfig::default());
        let moved = std::thread::spawn(move || session.run().unwrap())
            .join()
            .unwrap();

        assert_eq!(inline.cycles(), moved.cycles());
        assert_eq!(inline.report, moved.report);
        assert_eq!(inline.detector_cycles, moved.detector_cycles);
    }
}
