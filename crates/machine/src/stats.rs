//! Execution statistics collected by the simulator.

use serde::{Deserialize, Serialize};

/// Counters accumulated over a run.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MachineStats {
    /// Instructions executed (including terminators).
    pub instructions: u64,
    /// Load instructions executed.
    pub loads: u64,
    /// Store instructions executed.
    pub stores: u64,
    /// Atomic read-modify-write instructions executed.
    pub atomics: u64,
    /// Explicit fences executed.
    pub fences: u64,
    /// Accesses satisfied from the local L1.
    pub l1_hits: u64,
    /// Accesses satisfied on-chip without a HITM.
    pub llc_hits: u64,
    /// Accesses that hit a remotely-Modified line (HITM events).
    pub hitm_events: u64,
    /// HITM events triggered by loads.
    pub hitm_loads: u64,
    /// HITM events triggered by stores.
    pub hitm_stores: u64,
    /// Accesses that went to DRAM.
    pub dram_accesses: u64,
    /// Memory operations intercepted and serviced by an attached hook
    /// (the Pin/SSB instrumentation path).
    pub hook_handled_ops: u64,
    /// Hardware transactions committed.
    pub htm_commits: u64,
    /// Hardware transactions aborted for capacity.
    pub htm_capacity_aborts: u64,
    /// Cycles injected by external agents (driver interrupts, detector
    /// processing, instrumentation overhead).
    pub injected_overhead_cycles: u64,
}

impl MachineStats {
    /// Fraction of memory accesses that were HITMs.
    pub fn hitm_fraction(&self) -> f64 {
        let mem = self.loads + self.stores + self.atomics;
        if mem == 0 {
            0.0
        } else {
            self.hitm_events as f64 / mem as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hitm_fraction_handles_zero() {
        let s = MachineStats::default();
        assert_eq!(s.hitm_fraction(), 0.0);
        let s = MachineStats {
            loads: 50,
            stores: 50,
            hitm_events: 10,
            ..Default::default()
        };
        assert!((s.hitm_fraction() - 0.1).abs() < 1e-12);
    }
}
