//! The software store buffer (paper Section 5.1 and 5.5).
//!
//! Stores redirected to the SSB are kept in a thread-private, *coalescing*
//! buffer: one slot per memory word with a per-byte validity bitmap (so
//! unaligned and sub-word stores are handled correctly). Loads consult the
//! buffer first and fall back to shared memory, merging partially-buffered
//! words. A flush drains the buffer to shared memory; because coalescing can
//! reorder stores, the flush must be made visible atomically (the hook does it
//! inside a hardware transaction) to preserve TSO.

use laser_machine::fasthash::FastHashMap;
use laser_machine::{line_of, Addr};

/// Result of a buffer lookup for a load.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SsbLookup {
    /// Every requested byte is buffered; the value is returned directly.
    Hit(u64),
    /// No requested byte is buffered.
    Miss,
    /// Some requested bytes are buffered; the caller must read memory and
    /// overlay the buffered bytes with [`SoftwareStoreBuffer::merge`].
    Partial,
}

#[derive(Debug, Clone, Copy, Default)]
struct WordEntry {
    bytes: [u8; 8],
    valid: u8,
}

/// A thread-private coalescing software store buffer.
#[derive(Debug, Default)]
pub struct SoftwareStoreBuffer {
    // Hot per-store path: deterministic fast hashing, never iterated (drains
    // walk the separate first-touch `order` list).
    words: FastHashMap<Addr, WordEntry>,
    order: Vec<Addr>,
    total_buffered_stores: u64,
}

impl SoftwareStoreBuffer {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct words currently buffered ("entries" in the paper's
    /// sense; a pre-emptive flush triggers when this exceeds the hardware
    /// transaction capacity).
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// True if nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Number of distinct cache lines the buffered words span.
    pub fn distinct_lines(&self) -> usize {
        let mut lines: Vec<Addr> = self.order.iter().map(|&w| line_of(w)).collect();
        lines.sort_unstable();
        lines.dedup();
        lines.len()
    }

    /// Total stores ever buffered (for statistics).
    pub fn total_buffered_stores(&self) -> u64 {
        self.total_buffered_stores
    }

    fn word_key(addr: Addr) -> Addr {
        addr & !7
    }

    /// Buffer a store of `size` bytes (1..=8) of `value` at `addr`.
    ///
    /// # Panics
    /// Panics if `size` is 0 or greater than 8.
    pub fn put(&mut self, addr: Addr, size: u8, value: u64) {
        assert!((1..=8).contains(&size), "store size must be 1..=8");
        self.total_buffered_stores += 1;
        for i in 0..size as u64 {
            let byte_addr = addr + i;
            let key = Self::word_key(byte_addr);
            let off = (byte_addr - key) as usize;
            let entry = self.words.entry(key).or_insert_with(|| {
                // Track first-touch order so flushes are reproducible.
                WordEntry::default()
            });
            if entry.valid == 0 && !self.order.contains(&key) {
                self.order.push(key);
            }
            entry.bytes[off] = (value >> (8 * i)) as u8;
            entry.valid |= 1 << off;
        }
    }

    /// Look up a load of `size` bytes at `addr`.
    pub fn lookup(&self, addr: Addr, size: u8) -> SsbLookup {
        assert!((1..=8).contains(&size), "load size must be 1..=8");
        let mut have = 0u32;
        let mut value = 0u64;
        for i in 0..size as u64 {
            let byte_addr = addr + i;
            let key = Self::word_key(byte_addr);
            let off = (byte_addr - key) as usize;
            if let Some(e) = self.words.get(&key) {
                if e.valid & (1 << off) != 0 {
                    have += 1;
                    value |= (e.bytes[off] as u64) << (8 * i);
                }
            }
        }
        if have == 0 {
            SsbLookup::Miss
        } else if have == size as u32 {
            SsbLookup::Hit(value)
        } else {
            SsbLookup::Partial
        }
    }

    /// Overlay any buffered bytes of `[addr, addr+size)` onto `memory_value`
    /// (the value just read from shared memory) and return the merged value.
    pub fn merge(&self, addr: Addr, size: u8, memory_value: u64) -> u64 {
        let mut value = memory_value;
        for i in 0..size as u64 {
            let byte_addr = addr + i;
            let key = Self::word_key(byte_addr);
            let off = (byte_addr - key) as usize;
            if let Some(e) = self.words.get(&key) {
                if e.valid & (1 << off) != 0 {
                    value &= !(0xffu64 << (8 * i));
                    value |= (e.bytes[off] as u64) << (8 * i);
                }
            }
        }
        value
    }

    /// True if any byte of `[addr, addr+size)` is buffered (used by the
    /// speculative-alias runtime check).
    pub fn overlaps(&self, addr: Addr, size: u8) -> bool {
        !matches!(self.lookup(addr, size.clamp(1, 8)), SsbLookup::Miss)
    }

    /// Drain the buffer into a list of `(addr, size, value)` writes, one per
    /// contiguous valid byte run, in first-buffered order. The buffer is empty
    /// afterwards.
    pub fn drain_writes(&mut self) -> Vec<(Addr, u8, u64)> {
        let mut out = Vec::new();
        for key in std::mem::take(&mut self.order) {
            let Some(entry) = self.words.remove(&key) else {
                continue;
            };
            let mut i = 0usize;
            while i < 8 {
                if entry.valid & (1 << i) == 0 {
                    i += 1;
                    continue;
                }
                let start = i;
                let mut value = 0u64;
                let mut len = 0u8;
                while i < 8 && entry.valid & (1 << i) != 0 {
                    value |= (entry.bytes[i] as u64) << (8 * len);
                    len += 1;
                    i += 1;
                }
                out.push((key + start as u64, len, value));
            }
        }
        self.words.clear();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_then_hit() {
        let mut ssb = SoftwareStoreBuffer::new();
        assert!(ssb.is_empty());
        ssb.put(0x1000, 8, 0xdead_beef_cafe_f00d);
        assert_eq!(ssb.lookup(0x1000, 8), SsbLookup::Hit(0xdead_beef_cafe_f00d));
        assert_eq!(ssb.lookup(0x1000, 4), SsbLookup::Hit(0xcafe_f00d));
        assert_eq!(ssb.lookup(0x1004, 4), SsbLookup::Hit(0xdead_beef));
        assert_eq!(ssb.len(), 1);
        assert_eq!(ssb.total_buffered_stores(), 1);
    }

    #[test]
    fn miss_and_partial() {
        let mut ssb = SoftwareStoreBuffer::new();
        ssb.put(0x1000, 4, 0x1122_3344);
        assert_eq!(ssb.lookup(0x2000, 8), SsbLookup::Miss);
        assert_eq!(ssb.lookup(0x1000, 8), SsbLookup::Partial);
        // Merge overlays the four buffered low bytes onto the memory value.
        let merged = ssb.merge(0x1000, 8, 0xaaaa_bbbb_cccc_dddd);
        assert_eq!(merged, 0xaaaa_bbbb_1122_3344);
    }

    #[test]
    fn unaligned_store_spans_words() {
        let mut ssb = SoftwareStoreBuffer::new();
        ssb.put(0x1006, 4, 0xa1b2_c3d4);
        assert_eq!(ssb.lookup(0x1006, 4), SsbLookup::Hit(0xa1b2_c3d4));
        assert_eq!(ssb.len(), 2); // words 0x1000 and 0x1008
        let writes = ssb.drain_writes();
        // Two runs: bytes 6..8 of the first word, bytes 0..2 of the second.
        assert_eq!(writes.len(), 2);
        assert_eq!(writes[0], (0x1006, 2, 0xc3d4));
        assert_eq!(writes[1], (0x1008, 2, 0xa1b2));
        assert!(ssb.is_empty());
    }

    #[test]
    fn coalescing_keeps_latest_value() {
        let mut ssb = SoftwareStoreBuffer::new();
        ssb.put(0x1000, 8, 1);
        ssb.put(0x1000, 8, 2);
        ssb.put(0x1000, 1, 9);
        assert_eq!(ssb.lookup(0x1000, 8), SsbLookup::Hit(9));
        assert_eq!(ssb.len(), 1);
        let writes = ssb.drain_writes();
        assert_eq!(writes, vec![(0x1000, 8, 9)]);
    }

    #[test]
    fn distinct_lines_counts_cache_lines() {
        let mut ssb = SoftwareStoreBuffer::new();
        ssb.put(0x1000, 8, 1);
        ssb.put(0x1008, 8, 2); // same line
        ssb.put(0x1040, 8, 3); // next line
        assert_eq!(ssb.len(), 3);
        assert_eq!(ssb.distinct_lines(), 2);
        assert!(ssb.overlaps(0x1008, 8));
        assert!(!ssb.overlaps(0x2000, 8));
    }

    #[test]
    fn drain_preserves_first_buffered_order() {
        let mut ssb = SoftwareStoreBuffer::new();
        ssb.put(0x3000, 8, 30);
        ssb.put(0x1000, 8, 10);
        ssb.put(0x2000, 8, 20);
        ssb.put(0x1000, 8, 11); // coalesces, does not move
        let writes = ssb.drain_writes();
        let addrs: Vec<Addr> = writes.iter().map(|w| w.0).collect();
        assert_eq!(addrs, vec![0x3000, 0x1000, 0x2000]);
        assert_eq!(writes[1].2, 11);
    }

    #[test]
    #[should_panic(expected = "store size")]
    fn zero_size_put_panics() {
        let mut ssb = SoftwareStoreBuffer::new();
        ssb.put(0x1000, 0, 0);
    }
}
