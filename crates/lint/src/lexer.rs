//! A hand-rolled Rust lexer with just enough fidelity for the lint rules.
//!
//! The rules operate on identifiers and punctuation, so the lexer's job is
//! mostly *subtraction*: string literals (plain, raw, byte, raw-byte), char
//! literals and numbers must not leak identifier-looking text into the token
//! stream, block comments nest, and lifetimes must not be confused with char
//! literals. Comments are tokenized rather than discarded because the
//! `// lint:allow(...)` escape hatch lives inside them.
//!
//! Every token carries a 1-based line/column span so findings are clickable.

/// What a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`HashMap`, `for`, `r#async`).
    Ident,
    /// Numeric literal (`42`, `0x9e37`, `1.0f64`, `1e-9`).
    Number,
    /// Any string-like literal: `"…"`, `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`.
    Str,
    /// Char or byte literal: `'a'`, `'\n'`, `b'x'`.
    Char,
    /// Lifetime: `'a`, `'static`.
    Lifetime,
    /// `// …` to end of line.
    LineComment,
    /// `/* … */`, nesting handled.
    BlockComment,
    /// A single punctuation character.
    Punct,
}

/// One lexed token with its source span.
#[derive(Debug, Clone)]
pub struct Token {
    pub kind: TokenKind,
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
    /// 1-based column of the token's first character.
    pub col: u32,
}

impl Token {
    /// True if this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == s
    }

    /// True if this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct && self.text.len() == c.len_utf8() && self.text.starts_with(c)
    }

    /// True for comment tokens (line or block).
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokenKind::LineComment | TokenKind::BlockComment)
    }
}

struct Lexer<'a> {
    chars: std::str::Chars<'a>,
    /// Lookahead buffer (we never need more than 3 chars).
    peeked: Vec<char>,
    line: u32,
    col: u32,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            chars: src.chars(),
            peeked: Vec::new(),
            line: 1,
            col: 1,
        }
    }

    fn peek_at(&mut self, n: usize) -> Option<char> {
        while self.peeked.len() <= n {
            let c = self.chars.next()?;
            self.peeked.push(c);
        }
        self.peeked.get(n).copied()
    }

    fn peek(&mut self) -> Option<char> {
        self.peek_at(0)
    }

    fn bump(&mut self) -> Option<char> {
        let c = if self.peeked.is_empty() {
            self.chars.next()?
        } else {
            self.peeked.remove(0)
        };
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lex `src` into a token stream. Never fails: unterminated literals simply
/// swallow the rest of the file, which is the useful behavior for a linter
/// (the parse error will be reported by rustc, not by us).
pub fn lex(src: &str) -> Vec<Token> {
    let mut lx = Lexer::new(src);
    let mut out = Vec::new();
    while let Some(c) = lx.peek() {
        let (line, col) = (lx.line, lx.col);
        if c.is_whitespace() {
            lx.bump();
            continue;
        }
        let tok = match c {
            '/' if lx.peek_at(1) == Some('/') => lex_line_comment(&mut lx),
            '/' if lx.peek_at(1) == Some('*') => lex_block_comment(&mut lx),
            '"' => lex_string(&mut lx),
            '\'' => lex_quote(&mut lx),
            'r' if raw_string_follows(&mut lx, 1) => lex_raw_string(&mut lx),
            'b' => lex_b_prefixed(&mut lx),
            _ if is_ident_start(c) => lex_ident(&mut lx),
            _ if c.is_ascii_digit() => lex_number(&mut lx),
            _ => {
                lx.bump();
                (TokenKind::Punct, c.to_string())
            }
        };
        out.push(Token {
            kind: tok.0,
            text: tok.1,
            line,
            col,
        });
    }
    out
}

/// At offset `from` past an `r` (or `br`): does `#*"` follow?
fn raw_string_follows(lx: &mut Lexer, from: usize) -> bool {
    let mut i = from;
    while lx.peek_at(i) == Some('#') {
        i += 1;
    }
    lx.peek_at(i) == Some('"')
}

fn lex_line_comment(lx: &mut Lexer) -> (TokenKind, String) {
    let mut text = String::new();
    while let Some(c) = lx.peek() {
        if c == '\n' {
            break;
        }
        text.push(c);
        lx.bump();
    }
    (TokenKind::LineComment, text)
}

fn lex_block_comment(lx: &mut Lexer) -> (TokenKind, String) {
    let mut text = String::new();
    let mut depth = 0u32;
    while let Some(c) = lx.peek() {
        if c == '/' && lx.peek_at(1) == Some('*') {
            depth += 1;
            text.push_str("/*");
            lx.bump();
            lx.bump();
        } else if c == '*' && lx.peek_at(1) == Some('/') {
            depth -= 1;
            text.push_str("*/");
            lx.bump();
            lx.bump();
            if depth == 0 {
                break;
            }
        } else {
            text.push(c);
            lx.bump();
        }
    }
    (TokenKind::BlockComment, text)
}

fn lex_string(lx: &mut Lexer) -> (TokenKind, String) {
    let mut text = String::new();
    text.push('"');
    lx.bump(); // opening quote
    while let Some(c) = lx.bump() {
        text.push(c);
        if c == '\\' {
            if let Some(e) = lx.bump() {
                text.push(e);
            }
        } else if c == '"' {
            break;
        }
    }
    (TokenKind::Str, text)
}

fn lex_raw_string(lx: &mut Lexer) -> (TokenKind, String) {
    let mut text = String::new();
    text.push('r');
    lx.bump(); // 'r'
    let mut hashes = 0usize;
    while lx.peek() == Some('#') {
        hashes += 1;
        text.push('#');
        lx.bump();
    }
    text.push('"');
    lx.bump(); // opening quote
    while let Some(c) = lx.bump() {
        text.push(c);
        if c == '"' {
            // Need `hashes` consecutive '#' to close.
            let mut matched = 0usize;
            while matched < hashes && lx.peek() == Some('#') {
                matched += 1;
                text.push('#');
                lx.bump();
            }
            if matched == hashes {
                break;
            }
        }
    }
    (TokenKind::Str, text)
}

/// `'…`: lifetime or char literal.
fn lex_quote(lx: &mut Lexer) -> (TokenKind, String) {
    let mut text = String::new();
    text.push('\'');
    lx.bump(); // opening quote
    match lx.peek() {
        Some('\\') => {
            // Escaped char literal: consume escape, then everything to the
            // closing quote.
            while let Some(c) = lx.bump() {
                text.push(c);
                if c == '\\' {
                    if let Some(e) = lx.bump() {
                        text.push(e);
                    }
                } else if c == '\'' {
                    break;
                }
            }
            (TokenKind::Char, text)
        }
        Some(c) if is_ident_start(c) => {
            if lx.peek_at(1) == Some('\'') && !is_ident_continue(lx.peek_at(2).unwrap_or(' ')) {
                // 'a' — single ident-char literal. The lookahead at offset 2
                // guards 'a'b style ambiguity (never valid Rust anyway).
                text.push(c);
                lx.bump();
                text.push('\'');
                lx.bump();
                (TokenKind::Char, text)
            } else {
                // 'abc — a lifetime: consume the identifier, no closing quote.
                while let Some(c) = lx.peek() {
                    if !is_ident_continue(c) {
                        break;
                    }
                    text.push(c);
                    lx.bump();
                }
                (TokenKind::Lifetime, text)
            }
        }
        Some(_) => {
            // Non-ident char literal like '(' or '0'.
            if let Some(c) = lx.bump() {
                text.push(c);
            }
            if lx.peek() == Some('\'') {
                text.push('\'');
                lx.bump();
            }
            (TokenKind::Char, text)
        }
        None => (TokenKind::Punct, text),
    }
}

/// `b`-prefixed literal (b'…', b"…", br"…") or just an identifier.
fn lex_b_prefixed(lx: &mut Lexer) -> (TokenKind, String) {
    match lx.peek_at(1) {
        Some('\'') => {
            lx.bump(); // 'b'
            let (kind, text) = lex_quote(lx);
            (kind, format!("b{text}"))
        }
        Some('"') => {
            lx.bump(); // 'b'
            let (kind, text) = lex_string(lx);
            (kind, format!("b{text}"))
        }
        Some('r') if raw_string_follows(lx, 2) => {
            lx.bump(); // 'b'
            let (kind, text) = lex_raw_string(lx);
            (kind, format!("b{text}"))
        }
        _ => lex_ident(lx),
    }
}

fn lex_ident(lx: &mut Lexer) -> (TokenKind, String) {
    let mut text = String::new();
    // Raw identifier prefix r#ident.
    if lx.peek() == Some('r') && lx.peek_at(1) == Some('#') {
        if let Some(c) = lx.peek_at(2) {
            if is_ident_start(c) {
                lx.bump();
                lx.bump();
            }
        }
    }
    while let Some(c) = lx.peek() {
        if !is_ident_continue(c) {
            break;
        }
        text.push(c);
        lx.bump();
    }
    (TokenKind::Ident, text)
}

fn lex_number(lx: &mut Lexer) -> (TokenKind, String) {
    let mut text = String::new();
    // Radix-prefixed literals take everything alphanumeric (0x9e37_79b9).
    if lx.peek() == Some('0') && matches!(lx.peek_at(1), Some('x' | 'o' | 'b' | 'X' | 'O' | 'B')) {
        while let Some(c) = lx.peek() {
            if !is_ident_continue(c) {
                break;
            }
            text.push(c);
            lx.bump();
        }
        return (TokenKind::Number, text);
    }
    let digits = |lx: &mut Lexer, text: &mut String| {
        while let Some(c) = lx.peek() {
            if !c.is_ascii_digit() && c != '_' {
                break;
            }
            text.push(c);
            lx.bump();
        }
    };
    digits(lx, &mut text);
    // Fraction — but not `1..10` ranges and not method calls `1.max(x)`.
    if lx.peek() == Some('.') && lx.peek_at(1).is_some_and(|c| c.is_ascii_digit()) {
        text.push('.');
        lx.bump();
        digits(lx, &mut text);
    }
    // Exponent.
    if matches!(lx.peek(), Some('e' | 'E'))
        && (lx.peek_at(1).is_some_and(|c| c.is_ascii_digit())
            || (matches!(lx.peek_at(1), Some('+' | '-'))
                && lx.peek_at(2).is_some_and(|c| c.is_ascii_digit())))
    {
        text.push(lx.bump().unwrap_or('e'));
        if matches!(lx.peek(), Some('+' | '-')) {
            text.push(lx.bump().unwrap_or('+'));
        }
        digits(lx, &mut text);
    }
    // Type suffix (f64, u32, usize…).
    while let Some(c) = lx.peek() {
        if !is_ident_continue(c) {
            break;
        }
        text.push(c);
        lx.bump();
    }
    (TokenKind::Number, text)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_and_puncts() {
        let toks = kinds("let x = a.b();");
        assert_eq!(toks[0], (TokenKind::Ident, "let".to_string()));
        assert_eq!(toks[1], (TokenKind::Ident, "x".to_string()));
        assert_eq!(toks[2], (TokenKind::Punct, "=".to_string()));
        assert!(toks.iter().any(|t| t.0 == TokenKind::Punct && t.1 == ";"));
    }

    #[test]
    fn line_and_column_spans() {
        let toks = lex("a\n  bc");
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn nested_block_comments() {
        let toks = kinds("a /* outer /* inner */ still comment */ b");
        assert_eq!(toks.len(), 3);
        assert_eq!(toks[0].1, "a");
        assert_eq!(toks[1].0, TokenKind::BlockComment);
        assert!(toks[1].1.contains("inner"));
        assert!(toks[1].1.contains("still comment"));
        assert_eq!(toks[2].1, "b");
    }

    #[test]
    fn line_comment_stops_at_newline() {
        let toks = kinds("a // HashMap::new()\nb");
        assert_eq!(toks.len(), 3);
        assert_eq!(toks[1].0, TokenKind::LineComment);
        assert_eq!(toks[2].1, "b");
    }

    #[test]
    fn strings_hide_their_contents() {
        let toks = kinds(r#"f("HashMap::new() /* not a comment */")"#);
        assert!(toks
            .iter()
            .all(|t| t.0 != TokenKind::Ident || t.1 != "HashMap"));
        assert!(toks.iter().any(|t| t.0 == TokenKind::Str));
    }

    #[test]
    fn escaped_quote_does_not_end_string() {
        let toks = kinds(r#""a\"b" c"#);
        assert_eq!(toks[0].0, TokenKind::Str);
        assert_eq!(toks[1].1, "c");
    }

    #[test]
    fn raw_strings_with_hashes() {
        let toks = kinds(r###"r#"quote " inside"# x"###);
        assert_eq!(toks[0].0, TokenKind::Str);
        assert!(toks[0].1.contains("quote"));
        assert_eq!(toks[1].1, "x");
    }

    #[test]
    fn raw_string_hash_mismatch_keeps_scanning() {
        let toks = kinds(r####"r##"a"# still"## y"####);
        assert_eq!(toks[0].0, TokenKind::Str);
        assert!(toks[0].1.contains("still"));
        assert_eq!(toks[1].1, "y");
    }

    #[test]
    fn byte_literals() {
        let toks = kinds(r##"b"bytes" b'x' br#"raw"# ident"##);
        assert_eq!(toks[0].0, TokenKind::Str);
        assert_eq!(toks[1].0, TokenKind::Char);
        assert_eq!(toks[2].0, TokenKind::Str);
        assert_eq!(toks[3], (TokenKind::Ident, "ident".to_string()));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        let lifetimes: Vec<_> = toks.iter().filter(|t| t.0 == TokenKind::Lifetime).collect();
        let chars: Vec<_> = toks.iter().filter(|t| t.0 == TokenKind::Char).collect();
        assert_eq!(lifetimes.len(), 2);
        assert!(lifetimes.iter().all(|t| t.1 == "'a"));
        assert_eq!(chars.len(), 2);
    }

    #[test]
    fn static_lifetime_is_a_lifetime() {
        let toks = kinds("&'static str");
        assert!(toks
            .iter()
            .any(|t| t.0 == TokenKind::Lifetime && t.1 == "'static"));
    }

    #[test]
    fn numbers_do_not_eat_ranges_or_methods() {
        let toks = kinds("0..10 1.max(2) 1.5e-3f64 0x9e37_79b9");
        assert_eq!(toks[0], (TokenKind::Number, "0".to_string()));
        assert_eq!(toks[1].1, ".");
        assert_eq!(toks[2].1, ".");
        assert_eq!(toks[3], (TokenKind::Number, "10".to_string()));
        assert!(toks.iter().any(|t| t.1 == "max"));
        assert!(toks.iter().any(|t| t.1 == "1.5e-3f64"));
        assert!(toks.iter().any(|t| t.1 == "0x9e37_79b9"));
    }

    #[test]
    fn raw_identifiers() {
        let toks = kinds("r#async r#type normal");
        assert_eq!(toks[0], (TokenKind::Ident, "async".to_string()));
        assert_eq!(toks[1], (TokenKind::Ident, "type".to_string()));
        assert_eq!(toks[2], (TokenKind::Ident, "normal".to_string()));
    }

    #[test]
    fn unterminated_string_swallows_rest() {
        let toks = kinds("a \"unterminated...");
        assert_eq!(toks[0].1, "a");
        assert_eq!(toks[1].0, TokenKind::Str);
        assert_eq!(toks.len(), 2);
    }
}
