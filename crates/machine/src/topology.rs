//! Socket-aware machine topology.
//!
//! The paper evaluates LASER on a single-socket Haswell, where every HITM
//! transfer costs the same. On multi-socket parts the picture sharpens: a
//! HITM serviced by a core on *another* socket crosses the interconnect and
//! costs 2–3× a local one, LLC hits split into on- and cross-socket
//! transfers, and DRAM becomes NUMA (each line has a home socket). This
//! module makes the cost model pluggable along that axis.
//!
//! A [`Topology`] maps cores to sockets and prices each socket-resolved
//! access class ([`ResolvedClass`]): the coherence directory still decides
//! *what* happened ([`AccessClass`]), the topology decides *where* it was
//! serviced and what that costs. The default [`Topology::single_socket`]
//! resolves every access to its local class priced straight from the base
//! [`LatencyModel`], so a single-socket machine is **byte-identical** to the
//! pre-topology flat cost model.
//!
//! [`TopologySpec`] names the preset topologies the bench layer sweeps
//! (`flat`, `2s`, `4s`, `8s`) plus the many-core `32s` part (128 cores, kept
//! out of the default sweep); it is `Copy + Ord + Hash` so it can serve as a
//! grid axis and a CLI flag, and resolves to a full [`Topology`] on demand.
//!
//! Sockets need not be uniform: [`Topology::asymmetric`] takes an explicit
//! per-socket core-block layout (e.g. a fat socket of accelerator-adjacent
//! cores next to thin ones), and every socket-mapping query honours it.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::addr::{line_of, Addr};
use crate::coherence::{AccessClass, AccessOutcome};
use crate::timing::{LatencyError, LatencyModel};

/// Where an access was finally satisfied, with the socket axis resolved.
///
/// The local variants correspond 1:1 to [`AccessClass`] and are priced from
/// the base [`LatencyModel`]; the remote variants only arise on multi-socket
/// topologies and are priced from the topology's [`SocketLatency`] table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ResolvedClass {
    /// Satisfied from the local L1.
    L1Hit,
    /// Satisfied on-chip, on the accessing core's socket.
    LlcLocal,
    /// Satisfied from another socket's LLC (clean cross-socket transfer).
    LlcRemote,
    /// HITM serviced by a core on the same socket.
    HitmLocal,
    /// HITM serviced by a core on another socket — the expensive cross-socket
    /// coherence transfer that makes contention repair pay off even more.
    HitmRemote,
    /// Miss to DRAM attached to the accessing core's socket.
    DramLocal,
    /// Miss to DRAM homed on another socket (NUMA remote access).
    DramRemote,
}

/// Cross-socket latencies (in cycles) layered over a base [`LatencyModel`].
///
/// Local classes are always priced from the base model; these three fields
/// price their remote counterparts. Validation requires each remote latency
/// to be at least its local counterpart.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SocketLatency {
    /// Cross-socket HITM transfer (local: [`LatencyModel::hitm`]).
    pub remote_hitm: u64,
    /// Cross-socket LLC hit (local: [`LatencyModel::llc_hit`]).
    pub remote_llc: u64,
    /// Remote-homed DRAM access (local: [`LatencyModel::dram`]).
    pub remote_dram: u64,
}

/// How a workload's threads are laid out over the sockets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum ThreadPlacement {
    /// Fill socket 0's cores first, then socket 1's, and so on (thread `t`
    /// runs on core `t % num_cores`). This is the pre-topology behaviour, so
    /// it is the default.
    #[default]
    Packed,
    /// Alternate sockets: consecutive threads land on different sockets, so
    /// threads sharing a cache line contend *across* the interconnect. On a
    /// single-socket topology this is identical to [`ThreadPlacement::Packed`].
    RoundRobin,
}

impl fmt::Display for ThreadPlacement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ThreadPlacement::Packed => write!(f, "packed"),
            ThreadPlacement::RoundRobin => write!(f, "round-robin"),
        }
    }
}

/// Why a [`Topology`] was rejected at validation time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    /// The topology declares no sockets.
    NoSockets,
    /// An asymmetric layout declares a socket with zero cores.
    EmptySocket {
        /// The offending socket index.
        socket: usize,
    },
    /// A remote latency undercuts its local counterpart, which would make
    /// cross-socket transfers *cheaper* than staying on the socket.
    RemoteFasterThanLocal {
        /// Which latency is inverted (e.g. `remote_hitm`).
        what: &'static str,
        /// The remote value.
        remote: u64,
        /// The local counterpart.
        local: u64,
    },
    /// The base latency model itself is invalid.
    Latency(LatencyError),
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::NoSockets => write!(f, "topology declares zero sockets"),
            TopologyError::EmptySocket { socket } => {
                write!(f, "socket {socket} declares a zero-core block")
            }
            TopologyError::RemoteFasterThanLocal {
                what,
                remote,
                local,
            } => write!(
                f,
                "{what} ({remote} cycles) undercuts its local counterpart ({local} cycles)"
            ),
            TopologyError::Latency(e) => write!(f, "latency model: {e}"),
        }
    }
}

impl std::error::Error for TopologyError {}

impl From<LatencyError> for TopologyError {
    fn from(e: LatencyError) -> Self {
        TopologyError::Latency(e)
    }
}

/// A machine topology: how many sockets there are, how cores map onto them,
/// and what crossing the interconnect costs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Topology {
    name: String,
    num_sockets: usize,
    remote: SocketLatency,
    /// Explicit per-socket core-block sizes for asymmetric layouts. Empty
    /// means the symmetric default: cores split into `num_sockets` contiguous
    /// equal blocks (the last may be short).
    core_blocks: Vec<usize>,
}

impl Default for Topology {
    /// The paper's machine: one socket, flat costs.
    fn default() -> Self {
        Topology::single_socket()
    }
}

impl Topology {
    /// A custom symmetric topology (cores split into equal contiguous blocks).
    /// Use the preset constructors for the standard parts, or
    /// [`Topology::asymmetric`] for uneven per-socket core blocks.
    pub fn new(name: impl Into<String>, num_sockets: usize, remote: SocketLatency) -> Self {
        Topology {
            name: name.into(),
            num_sockets,
            remote,
            core_blocks: Vec::new(),
        }
    }

    /// A custom topology with an explicit per-socket core-block layout: socket
    /// `i` owns the contiguous block of `core_blocks[i]` cores that starts
    /// where socket `i - 1`'s block ends. The socket count is the number of
    /// blocks. Cores past the declared blocks (when a machine is built with
    /// more cores than the layout names) spill onto the last socket;
    /// [`Topology::validate`] rejects zero-core blocks.
    pub fn asymmetric(
        name: impl Into<String>,
        core_blocks: Vec<usize>,
        remote: SocketLatency,
    ) -> Self {
        Topology {
            name: name.into(),
            num_sockets: core_blocks.len(),
            remote,
            core_blocks,
        }
    }

    /// The single-socket (flat) topology: every access resolves to its local
    /// class, priced exactly as the base [`LatencyModel`] — byte-identical to
    /// the pre-topology cost model. The remote table is populated (with the
    /// dual-socket values) but unreachable.
    pub fn single_socket() -> Self {
        Topology::new("flat", 1, Topology::dual_socket_remote())
    }

    /// A two-socket part: cross-socket HITMs cost ~2.5× a local one,
    /// cross-socket LLC hits and remote DRAM pay the interconnect hop.
    pub fn dual_socket() -> Self {
        Topology::new("2s", 2, Topology::dual_socket_remote())
    }

    /// A four-socket part: one more hop on average than the dual-socket
    /// interconnect, so every remote class is a little dearer again.
    pub fn quad_socket() -> Self {
        Topology::new(
            "4s",
            4,
            SocketLatency {
                remote_hitm: 260,
                remote_llc: 130,
                remote_dram: 360,
            },
        )
    }

    /// An eight-socket part (32 cores): glueless interconnects top out around
    /// four sockets, so these parts route through a node controller and every
    /// remote class pays another hop over the quad-socket table.
    pub fn octo_socket() -> Self {
        Topology::new(
            "8s",
            8,
            SocketLatency {
                remote_hitm: 300,
                remote_llc: 160,
                remote_dram: 410,
            },
        )
    }

    /// A 32-socket rack-scale part (128 cores): node controllers stack up, so
    /// every remote class pays yet another hop over the eight-socket table.
    /// This is the largest preset the coherence directory's 128-bit sharer
    /// bitmap admits; it is deliberately left out of [`TopologySpec::ALL`] so
    /// the default cross-socket sweep stays four cells wide.
    pub fn thirty_two_socket() -> Self {
        Topology::new(
            "32s",
            32,
            SocketLatency {
                remote_hitm: 340,
                remote_llc: 190,
                remote_dram: 460,
            },
        )
    }

    fn dual_socket_remote() -> SocketLatency {
        SocketLatency {
            remote_hitm: 220,
            remote_llc: 100,
            remote_dram: 310,
        }
    }

    /// The topology's display name (`flat`, `2s`, `4s`, or custom).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of sockets.
    pub fn num_sockets(&self) -> usize {
        self.num_sockets
    }

    /// The cross-socket latency table.
    pub fn remote_latency(&self) -> SocketLatency {
        self.remote
    }

    /// The explicit per-socket core-block layout, or an empty slice for the
    /// symmetric default.
    pub fn core_blocks(&self) -> &[usize] {
        &self.core_blocks
    }

    /// Check the topology (and its base latency model) for configurations
    /// that would price nonsense: zero sockets, remote transfers cheaper than
    /// local ones, or an invalid base model.
    ///
    /// # Errors
    /// Returns the first violated constraint.
    pub fn validate(&self, base: &LatencyModel) -> Result<(), TopologyError> {
        base.validate()?;
        if self.num_sockets == 0 {
            return Err(TopologyError::NoSockets);
        }
        if let Some(socket) = self.core_blocks.iter().position(|&b| b == 0) {
            return Err(TopologyError::EmptySocket { socket });
        }
        let checks = [
            ("remote_hitm", self.remote.remote_hitm, base.hitm),
            ("remote_llc", self.remote.remote_llc, base.llc_hit),
            ("remote_dram", self.remote.remote_dram, base.dram),
        ];
        for (what, remote, local) in checks {
            if remote < local {
                return Err(TopologyError::RemoteFasterThanLocal {
                    what,
                    remote,
                    local,
                });
            }
        }
        Ok(())
    }

    /// Cores per socket for a *symmetric* machine with `num_cores` cores (the
    /// last socket may be short when the counts do not divide evenly). On an
    /// asymmetric layout this returns the widest declared block.
    pub fn cores_per_socket(&self, num_cores: usize) -> usize {
        if self.core_blocks.is_empty() {
            num_cores.div_ceil(self.num_sockets)
        } else {
            self.core_blocks.iter().copied().max().unwrap_or(1)
        }
    }

    /// The contiguous `(first_core, len)` block each socket owns on a machine
    /// with `num_cores` cores: equal blocks for the symmetric default,
    /// the declared blocks for an asymmetric layout (clamped to the cores that
    /// exist, with any spill-over landing on the last socket).
    fn socket_blocks(&self, num_cores: usize) -> Vec<(usize, usize)> {
        let mut blocks = Vec::with_capacity(self.num_sockets);
        if self.core_blocks.is_empty() {
            let cps = num_cores.div_ceil(self.num_sockets);
            for socket in 0..self.num_sockets {
                let start = (socket * cps).min(num_cores);
                let len = cps.min(num_cores - start);
                blocks.push((start, len));
            }
        } else {
            let mut start = 0;
            for (socket, &declared) in self.core_blocks.iter().enumerate() {
                let last = socket + 1 == self.num_sockets;
                let len = if last {
                    num_cores - start.min(num_cores)
                } else {
                    declared.min(num_cores - start.min(num_cores))
                };
                blocks.push((start.min(num_cores), len));
                start += declared;
            }
        }
        blocks
    }

    /// The socket a core belongs to: cores fill sockets in contiguous blocks
    /// (cores `0..cps` on socket 0, `cps..2·cps` on socket 1, … for the
    /// symmetric default; the declared blocks for an asymmetric layout, with
    /// cores past the declared layout spilling onto the last socket).
    pub fn socket_of(&self, core: usize, num_cores: usize) -> usize {
        if self.core_blocks.is_empty() {
            return core / self.cores_per_socket(num_cores);
        }
        let mut end = 0;
        for (socket, &block) in self.core_blocks.iter().enumerate() {
            end += block;
            if core < end {
                return socket;
            }
        }
        self.num_sockets - 1
    }

    /// The socket whose DRAM a line is homed on: lines interleave over the
    /// sockets at cache-line granularity, the common BIOS default.
    pub fn home_socket(&self, line_addr: Addr) -> usize {
        ((line_of(line_addr) / crate::addr::CACHE_LINE_SIZE) % self.num_sockets as u64) as usize
    }

    /// The core a thread runs on under `placement`. `Packed` is the
    /// pre-topology mapping (`tid % num_cores`); `RoundRobin` alternates
    /// sockets so consecutive threads land across the interconnect. On a
    /// single-socket topology both are identical.
    pub fn place_thread(&self, tid: usize, num_cores: usize, placement: ThreadPlacement) -> usize {
        match placement {
            ThreadPlacement::Packed => tid % num_cores,
            ThreadPlacement::RoundRobin => {
                // Enumerate cores socket-alternating: position p visits the
                // (p / sockets)-th core of socket (p % sockets), skipping
                // positions past the end of a short (or thin, for asymmetric
                // layouts) socket's block.
                let blocks = self.socket_blocks(num_cores);
                let deepest = blocks.iter().map(|&(_, len)| len).max().unwrap_or(0);
                let mut order = Vec::with_capacity(num_cores);
                for pos in 0..deepest {
                    for &(start, len) in &blocks {
                        if pos < len {
                            order.push(start + pos);
                        }
                    }
                }
                order[tid % num_cores]
            }
        }
    }

    /// Resolve a directory outcome to its socket-aware class for an access by
    /// `core` to `line_addr` on a machine with `num_cores` cores.
    ///
    /// * HITMs are local when the previous owner shares the accessor's socket.
    /// * LLC hits are local when any prior holder of the line (other than the
    ///   accessor) is on the accessor's socket.
    /// * DRAM misses are local when the line's home socket is the accessor's.
    ///
    /// On a single-socket topology every access resolves to its local class.
    pub fn resolve(
        &self,
        outcome: &AccessOutcome,
        core: usize,
        num_cores: usize,
        line_addr: Addr,
    ) -> ResolvedClass {
        if self.num_sockets <= 1 {
            return match outcome.class {
                AccessClass::L1Hit => ResolvedClass::L1Hit,
                AccessClass::LlcHit => ResolvedClass::LlcLocal,
                AccessClass::Hitm => ResolvedClass::HitmLocal,
                AccessClass::Dram => ResolvedClass::DramLocal,
            };
        }
        let socket = self.socket_of(core, num_cores);
        match outcome.class {
            AccessClass::L1Hit => ResolvedClass::L1Hit,
            AccessClass::Hitm => {
                let owner = outcome
                    .previous_owner
                    .expect("HITM outcomes carry their previous owner"); // lint:allow(panic) — the coherence directory only reports HITM when a previous owner exists
                if self.socket_of(owner, num_cores) == socket {
                    ResolvedClass::HitmLocal
                } else {
                    ResolvedClass::HitmRemote
                }
            }
            AccessClass::LlcHit => {
                let mut holders = outcome.sharers & !(1u128 << core);
                let mut local = false;
                while holders != 0 {
                    let holder = holders.trailing_zeros() as usize;
                    holders &= holders - 1;
                    if self.socket_of(holder, num_cores) == socket {
                        local = true;
                        break;
                    }
                }
                if local {
                    ResolvedClass::LlcLocal
                } else {
                    ResolvedClass::LlcRemote
                }
            }
            AccessClass::Dram => {
                if self.home_socket(line_addr) == socket {
                    ResolvedClass::DramLocal
                } else {
                    ResolvedClass::DramRemote
                }
            }
        }
    }

    /// The cycle cost of a resolved class: local classes from the base model,
    /// remote classes from this topology's [`SocketLatency`] table.
    pub fn cost(&self, class: ResolvedClass, base: &LatencyModel) -> u64 {
        match class {
            ResolvedClass::L1Hit => base.l1_hit,
            ResolvedClass::LlcLocal => base.llc_hit,
            ResolvedClass::LlcRemote => self.remote.remote_llc,
            ResolvedClass::HitmLocal => base.hitm,
            ResolvedClass::HitmRemote => self.remote.remote_hitm,
            ResolvedClass::DramLocal => base.dram,
            ResolvedClass::DramRemote => self.remote.remote_dram,
        }
    }
}

/// The named preset topologies — the axis the bench layer sweeps and the
/// `experiments --topology` flag names. `Copy + Ord + Hash`, so it can key a
/// grid cell alongside the workload and tool.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize,
)]
pub enum TopologySpec {
    /// The paper's single-socket machine (the default; byte-identical to the
    /// pre-topology flat cost model).
    #[default]
    Flat,
    /// Two sockets, 4 cores each.
    DualSocket,
    /// Four sockets, 4 cores each.
    QuadSocket,
    /// Eight sockets, 4 cores each (32 cores).
    OctoSocket,
    /// Thirty-two sockets, 4 cores each (128 cores) — the many-core ceiling
    /// the coherence directory's 128-bit sharer bitmap admits. Deliberately
    /// excluded from [`TopologySpec::ALL`] so the default cross-socket sweep
    /// stays four cells wide; name it explicitly (`--topology 32s`) to use it.
    ThirtyTwoSocket,
}

impl TopologySpec {
    /// Every preset in the default sweep, in sweep order.
    /// [`TopologySpec::ThirtyTwoSocket`] is opt-in and not listed here.
    pub const ALL: [TopologySpec; 4] = [
        TopologySpec::Flat,
        TopologySpec::DualSocket,
        TopologySpec::QuadSocket,
        TopologySpec::OctoSocket,
    ];

    /// The stable key (`flat`, `2s`, `4s`, `8s`, `32s`) used in CLI flags and
    /// cell names.
    pub fn key(&self) -> &'static str {
        match self {
            TopologySpec::Flat => "flat",
            TopologySpec::DualSocket => "2s",
            TopologySpec::QuadSocket => "4s",
            TopologySpec::OctoSocket => "8s",
            TopologySpec::ThirtyTwoSocket => "32s",
        }
    }

    /// Parse a key as accepted by `experiments --topology`.
    pub fn parse(s: &str) -> Option<TopologySpec> {
        match s {
            "flat" => Some(TopologySpec::Flat),
            "2s" => Some(TopologySpec::DualSocket),
            "4s" => Some(TopologySpec::QuadSocket),
            "8s" => Some(TopologySpec::OctoSocket),
            "32s" => Some(TopologySpec::ThirtyTwoSocket),
            _ => None,
        }
    }

    /// Number of sockets.
    pub fn sockets(&self) -> usize {
        match self {
            TopologySpec::Flat => 1,
            TopologySpec::DualSocket => 2,
            TopologySpec::QuadSocket => 4,
            TopologySpec::OctoSocket => 8,
            TopologySpec::ThirtyTwoSocket => 32,
        }
    }

    /// Resolve the full [`Topology`] model.
    pub fn topology(&self) -> Topology {
        match self {
            TopologySpec::Flat => Topology::single_socket(),
            TopologySpec::DualSocket => Topology::dual_socket(),
            TopologySpec::QuadSocket => Topology::quad_socket(),
            TopologySpec::OctoSocket => Topology::octo_socket(),
            TopologySpec::ThirtyTwoSocket => Topology::thirty_two_socket(),
        }
    }

    /// Cores on this preset: the paper's 4 cores per socket.
    pub fn num_cores(&self) -> usize {
        4 * self.sockets()
    }
}

impl fmt::Display for TopologySpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.key())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coherence::CoherenceDirectory;

    #[test]
    fn presets_validate_against_the_default_model() {
        let base = LatencyModel::default();
        for spec in TopologySpec::ALL {
            spec.topology().validate(&base).unwrap();
        }
    }

    #[test]
    fn validation_rejects_zero_sockets_and_inverted_remote_latencies() {
        let base = LatencyModel::default();
        let t = Topology::new("bad", 0, Topology::dual_socket_remote());
        assert_eq!(t.validate(&base), Err(TopologyError::NoSockets));

        let t = Topology::new(
            "bad",
            2,
            SocketLatency {
                remote_hitm: 10, // < hitm (90)
                remote_llc: 100,
                remote_dram: 310,
            },
        );
        assert_eq!(
            t.validate(&base),
            Err(TopologyError::RemoteFasterThanLocal {
                what: "remote_hitm",
                remote: 10,
                local: 90,
            })
        );

        // An invalid base model surfaces through the topology check too.
        let zero_freq = LatencyModel {
            freq_hz: 0,
            ..LatencyModel::default()
        };
        assert!(matches!(
            Topology::single_socket().validate(&zero_freq),
            Err(TopologyError::Latency(LatencyError::ZeroFrequency))
        ));
    }

    #[test]
    fn single_socket_costs_equal_the_base_model_for_every_class() {
        // The byte-identity contract: on the default topology, every local
        // class is priced exactly as the pre-topology flat model, and no
        // remote class is ever produced.
        let base = LatencyModel::default();
        let t = Topology::single_socket();
        assert_eq!(t.cost(ResolvedClass::L1Hit, &base), base.l1_hit);
        assert_eq!(t.cost(ResolvedClass::LlcLocal, &base), base.llc_hit);
        assert_eq!(t.cost(ResolvedClass::HitmLocal, &base), base.hitm);
        assert_eq!(t.cost(ResolvedClass::DramLocal, &base), base.dram);
        let mut d = CoherenceDirectory::new(4);
        d.access(0, 0x1000, true);
        let o = d.access(3, 0x1000, false); // HITM
        assert_eq!(t.resolve(&o, 3, 4, 0x1000), ResolvedClass::HitmLocal);
        let o = d.access(2, 0x2000, false); // cold miss
        assert_eq!(t.resolve(&o, 2, 4, 0x2000), ResolvedClass::DramLocal);
    }

    #[test]
    fn socket_mapping_is_contiguous_blocks() {
        let t = Topology::dual_socket();
        assert_eq!(t.cores_per_socket(8), 4);
        for core in 0..4 {
            assert_eq!(t.socket_of(core, 8), 0);
        }
        for core in 4..8 {
            assert_eq!(t.socket_of(core, 8), 1);
        }
        // Uneven split: the last socket is short.
        assert_eq!(t.cores_per_socket(5), 3);
        assert_eq!(t.socket_of(2, 5), 0);
        assert_eq!(t.socket_of(3, 5), 1);
    }

    #[test]
    fn hitm_resolution_splits_on_the_owner_socket() {
        let t = Topology::dual_socket();
        let mut d = CoherenceDirectory::new(8);
        d.access(0, 0x40, true); // core 0 (socket 0) owns the line
        let o = d.access(1, 0x40, true); // core 1, same socket
        assert_eq!(t.resolve(&o, 1, 8, 0x40), ResolvedClass::HitmLocal);
        let o = d.access(5, 0x40, true); // core 5, socket 1
        assert_eq!(t.resolve(&o, 5, 8, 0x40), ResolvedClass::HitmRemote);
    }

    #[test]
    fn llc_resolution_checks_for_an_on_socket_holder() {
        let t = Topology::dual_socket();
        let mut d = CoherenceDirectory::new(8);
        // Core 0 (socket 0) reads; core 5 (socket 1) reads: no socket-1 holder
        // besides itself ⇒ the line comes across the interconnect.
        d.access(0, 0x80, false);
        let o = d.access(5, 0x80, false);
        assert_eq!(o.class, AccessClass::LlcHit);
        assert_eq!(t.resolve(&o, 5, 8, 0x80), ResolvedClass::LlcRemote);
        // Core 6 (socket 1) reads next: core 5 already holds it on-socket.
        let o = d.access(6, 0x80, false);
        assert_eq!(t.resolve(&o, 6, 8, 0x80), ResolvedClass::LlcLocal);
    }

    #[test]
    fn dram_homes_interleave_by_line() {
        let t = Topology::dual_socket();
        assert_eq!(t.home_socket(0x0), 0);
        assert_eq!(t.home_socket(0x40), 1);
        assert_eq!(t.home_socket(0x80), 0);
        // Addresses within one line share a home.
        assert_eq!(t.home_socket(0x47), 1);
        let mut d = CoherenceDirectory::new(8);
        let o = d.access(0, 0x0, false); // home 0, accessor socket 0
        assert_eq!(t.resolve(&o, 0, 8, 0x0), ResolvedClass::DramLocal);
        let o = d.access(0, 0x40, false); // home 1, accessor socket 0
        assert_eq!(t.resolve(&o, 0, 8, 0x40), ResolvedClass::DramRemote);
    }

    #[test]
    fn placement_packed_matches_the_pre_topology_mapping() {
        let t = Topology::dual_socket();
        for tid in 0..16 {
            assert_eq!(t.place_thread(tid, 8, ThreadPlacement::Packed), tid % 8);
        }
    }

    #[test]
    fn placement_round_robin_alternates_sockets() {
        let t = Topology::dual_socket();
        let cores: Vec<usize> = (0..8)
            .map(|tid| t.place_thread(tid, 8, ThreadPlacement::RoundRobin))
            .collect();
        assert_eq!(cores, vec![0, 4, 1, 5, 2, 6, 3, 7]);
        let sockets: Vec<usize> = cores.iter().map(|&c| t.socket_of(c, 8)).collect();
        assert_eq!(sockets, vec![0, 1, 0, 1, 0, 1, 0, 1]);
        // On one socket, round-robin degenerates to the packed mapping.
        let flat = Topology::single_socket();
        for tid in 0..8 {
            assert_eq!(
                flat.place_thread(tid, 4, ThreadPlacement::RoundRobin),
                tid % 4
            );
        }
    }

    #[test]
    fn spec_round_trips_keys_and_resolves() {
        for spec in TopologySpec::ALL {
            assert_eq!(TopologySpec::parse(spec.key()), Some(spec));
            assert_eq!(spec.topology().num_sockets(), spec.sockets());
            assert_eq!(spec.num_cores(), 4 * spec.sockets());
            assert_eq!(spec.to_string(), spec.key());
        }
        assert_eq!(TopologySpec::parse("16s"), None);
        assert_eq!(TopologySpec::default(), TopologySpec::Flat);
    }

    #[test]
    fn thirty_two_socket_preset_is_opt_in_and_reaches_128_cores() {
        let t = Topology::thirty_two_socket();
        assert_eq!(t.num_sockets(), 32);
        t.validate(&LatencyModel::default()).unwrap();
        let spec = TopologySpec::ThirtyTwoSocket;
        assert_eq!(spec.num_cores(), 128);
        assert_eq!(spec.key(), "32s");
        assert_eq!(TopologySpec::parse("32s"), Some(spec));
        assert!(
            !TopologySpec::ALL.contains(&spec),
            "32s stays out of the default sweep"
        );
        // Each hop up the ladder keeps making remote classes dearer.
        let octo = Topology::octo_socket().remote_latency();
        let many = t.remote_latency();
        assert!(many.remote_hitm > octo.remote_hitm);
        assert!(many.remote_llc > octo.remote_llc);
        assert!(many.remote_dram > octo.remote_dram);
        // The highest core maps to the highest socket.
        assert_eq!(t.socket_of(127, 128), 31);
        assert_eq!(t.socket_of(0, 128), 0);
    }

    #[test]
    fn asymmetric_layouts_map_cores_by_declared_blocks() {
        let t = Topology::asymmetric("fat0", vec![6, 2], Topology::dual_socket_remote());
        assert_eq!(t.num_sockets(), 2);
        assert_eq!(t.core_blocks(), &[6, 2]);
        t.validate(&LatencyModel::default()).unwrap();
        for core in 0..6 {
            assert_eq!(t.socket_of(core, 8), 0);
        }
        for core in 6..8 {
            assert_eq!(t.socket_of(core, 8), 1);
        }
        // Spill-over cores land on the last socket.
        assert_eq!(t.socket_of(11, 12), 1);
        // Round-robin alternates sockets while both blocks have cores left,
        // then finishes the fat socket.
        let cores: Vec<usize> = (0..8)
            .map(|tid| t.place_thread(tid, 8, ThreadPlacement::RoundRobin))
            .collect();
        assert_eq!(cores, vec![0, 6, 1, 7, 2, 3, 4, 5]);
        // HITM resolution honours the asymmetric split: cores 5 and 6 are
        // adjacent but on different sockets.
        let mut d = CoherenceDirectory::new(8);
        d.access(5, 0x40, true);
        let o = d.access(6, 0x40, true);
        assert_eq!(t.resolve(&o, 6, 8, 0x40), ResolvedClass::HitmRemote);
        let o = d.access(7, 0x40, true);
        assert_eq!(t.resolve(&o, 7, 8, 0x40), ResolvedClass::HitmLocal);
    }

    #[test]
    fn asymmetric_validation_rejects_zero_core_blocks() {
        let t = Topology::asymmetric("bad", vec![4, 0, 4], Topology::dual_socket_remote());
        assert_eq!(
            t.validate(&LatencyModel::default()),
            Err(TopologyError::EmptySocket { socket: 1 })
        );
        assert_eq!(
            TopologyError::EmptySocket { socket: 1 }.to_string(),
            "socket 1 declares a zero-core block"
        );
    }

    #[test]
    fn octo_socket_preset_has_eight_sockets_and_dearer_remote_classes() {
        let t = Topology::octo_socket();
        assert_eq!(t.num_sockets(), 8);
        assert_eq!(TopologySpec::OctoSocket.num_cores(), 32);
        t.validate(&LatencyModel::default()).unwrap();
        // Each hop up the preset ladder makes every remote class dearer.
        let quad = Topology::quad_socket().remote_latency();
        let octo = t.remote_latency();
        assert!(octo.remote_hitm > quad.remote_hitm);
        assert!(octo.remote_llc > quad.remote_llc);
        assert!(octo.remote_dram > quad.remote_dram);
    }
}
