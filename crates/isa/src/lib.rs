//! # laser-isa
//!
//! A small RISC-like instruction set, program representation and the static
//! analyses the LASER system needs.
//!
//! The LASER paper (HPCA 2016) operates on x86 binaries, but only uses a few
//! properties of them: every instruction has a program counter (PC), loads and
//! stores have discoverable access sizes ("load/store sets"), and a control
//! flow graph can be recovered for the repair tool's flush-placement analysis.
//! This crate provides exactly those properties over a compact, explicit
//! instruction set that the `laser-machine` simulator executes.
//!
//! ## Contents
//!
//! * [`inst`] — instructions, registers, operands and addressing modes.
//! * [`program`] — basic blocks, programs, PCs and source maps.
//! * [`builder`] — an ergonomic [`builder::ProgramBuilder`] used by the
//!   synthetic workloads.
//! * [`cfg`](mod@cfg) — control-flow graph construction.
//! * [`dom`] — dominator and post-dominator trees (used to place SSB flushes).
//! * [`memsets`] — load/store set extraction ("binary analysis" in the paper).
//! * [`alias`] — the simplified speculative alias analysis of Section 5.3.
//!
//! ## Example
//!
//! ```
//! use laser_isa::builder::ProgramBuilder;
//! use laser_isa::inst::{Operand, Reg};
//!
//! let mut b = ProgramBuilder::new("counter");
//! b.source("counter.c", 10);
//! let body = b.block("body");
//! let done = b.block("done");
//! b.switch_to(body);
//! b.load(Reg(1), Reg(0), 0, 8); // r1 = *r0
//! b.addi(Reg(1), Reg(1), 1); // r1 += 1
//! b.store(Operand::Reg(Reg(1)), Reg(0), 0, 8); // *r0 = r1
//! b.jump(done);
//! b.switch_to(done);
//! b.halt();
//! let program = b.finish();
//! assert_eq!(program.num_insts(), 5);
//! ```

#![forbid(unsafe_code)]

pub mod alias;
pub mod builder;
pub mod cfg;
pub mod decoded;
pub mod dom;
pub mod inst;
pub mod memsets;
pub mod program;

pub use builder::ProgramBuilder;
pub use cfg::Cfg;
pub use decoded::{DecodedBlock, DecodedInst, DecodedProgram};
pub use inst::{AluOp, CmpOp, Inst, MemAddr, Operand, Reg, RmwOp, Terminator};
pub use memsets::MemAccessSets;
pub use program::{BasicBlock, BlockId, Pc, Program, SourceLoc};
