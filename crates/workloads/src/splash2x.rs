//! The Splash2x workloads.
//!
//! `lu_ncb` carries the new false-sharing bug LASER found on its main matrix,
//! and `volrend` the true sharing on the global queue-counter lock; the rest
//! are benign barrier- or lock-structured kernels.

use laser_isa::inst::Operand;
use laser_isa::ProgramBuilder;
use laser_machine::{ThreadSpec, WorkloadImage};

use crate::common::{
    barrier_phased, close_loop, emit_lock_acquire, emit_lock_release, locked_accumulator,
    open_loop, private_compute, regs, scaled_iters, INTENSE_DILATION, MILD_DILATION,
};
use crate::spec::{BugKind, BuildOptions, KnownBug, SheriffCompat, Suite, WorkloadSpec};

/// All Splash2x workload specifications.
pub fn all() -> Vec<WorkloadSpec> {
    vec![
        WorkloadSpec {
            name: "barnes",
            suite: Suite::Splash2x,
            known_bugs: vec![],
            sheriff: SheriffCompat::Crash,
            has_fix: false,
            build_fn: |o| barrier_phased("barnes", "barnes.c", o, 3, 650, 7),
        },
        WorkloadSpec {
            name: "fft",
            suite: Suite::Splash2x,
            known_bugs: vec![],
            sheriff: SheriffCompat::Crash,
            has_fix: false,
            build_fn: |o| barrier_phased("fft", "fft.c", o, 2, 900, 6),
        },
        WorkloadSpec {
            name: "fmm",
            suite: Suite::Splash2x,
            known_bugs: vec![],
            sheriff: SheriffCompat::Crash,
            has_fix: false,
            build_fn: |o| barrier_phased("fmm", "fmm.c", o, 3, 700, 8),
        },
        WorkloadSpec {
            name: "lu_cb",
            suite: Suite::Splash2x,
            known_bugs: vec![],
            sheriff: SheriffCompat::Works,
            has_fix: false,
            build_fn: |o| barrier_phased("lu_cb", "lu_cb.c", o, 3, 750, 6),
        },
        WorkloadSpec {
            name: "lu_ncb",
            suite: Suite::Splash2x,
            known_bugs: vec![KnownBug::new(
                "lu_ncb.c",
                &[140],
                BugKind::FalseSharing,
                "the non-contiguous-block layout of the `a` matrix places different threads' \
                 boundary elements in the same cache line",
            )],
            sheriff: SheriffCompat::Works,
            has_fix: true,
            build_fn: lu_ncb,
        },
        WorkloadSpec {
            name: "ocean_cp",
            suite: Suite::Splash2x,
            known_bugs: vec![],
            sheriff: SheriffCompat::Crash,
            has_fix: false,
            build_fn: |o| barrier_phased("ocean_cp", "ocean_cp.c", o, 4, 550, 5),
        },
        WorkloadSpec {
            name: "ocean_ncp",
            suite: Suite::Splash2x,
            known_bugs: vec![],
            sheriff: SheriffCompat::Crash,
            has_fix: false,
            build_fn: |o| barrier_phased("ocean_ncp", "ocean_ncp.c", o, 4, 550, 5),
        },
        WorkloadSpec {
            name: "radiosity",
            suite: Suite::Splash2x,
            known_bugs: vec![],
            sheriff: SheriffCompat::Crash,
            has_fix: false,
            build_fn: |o| locked_accumulator("radiosity", "radiosity.c", o, 2000, 72, 7),
        },
        WorkloadSpec {
            name: "radix",
            suite: Suite::Splash2x,
            known_bugs: vec![],
            sheriff: SheriffCompat::Works,
            has_fix: false,
            build_fn: |o| barrier_phased("radix", "radix.c", o, 2, 800, 4),
        },
        WorkloadSpec {
            name: "raytrace.splash2x",
            suite: Suite::Splash2x,
            known_bugs: vec![],
            sheriff: SheriffCompat::Works,
            has_fix: false,
            build_fn: |o| {
                locked_accumulator("raytrace.splash2x", "raytrace_splash.c", o, 2100, 64, 9)
            },
        },
        WorkloadSpec {
            name: "volrend",
            suite: Suite::Splash2x,
            known_bugs: vec![KnownBug::new(
                "volrend.c",
                &[210],
                BugKind::TrueSharing,
                "the lock protecting the Global->Queue counter is taken by every thread for \
                 every work item",
            )],
            sheriff: SheriffCompat::Crash,
            has_fix: true,
            build_fn: volrend,
        },
        WorkloadSpec {
            name: "water_nsquared",
            suite: Suite::Splash2x,
            known_bugs: vec![],
            sheriff: SheriffCompat::Works,
            has_fix: false,
            build_fn: water_nsquared,
        },
        WorkloadSpec {
            name: "water_spatial",
            suite: Suite::Splash2x,
            known_bugs: vec![],
            sheriff: SheriffCompat::Works,
            has_fix: false,
            build_fn: |o| private_compute("water_spatial", "water_spatial.c", o, 2400, 9, 16),
        },
    ]
}

/// `lu_ncb`: each thread factorises a column block of the shared `a` matrix.
/// The non-contiguous-block layout packs the blocks back to back, so the last
/// line of thread *t*'s block is the first line of thread *t+1*'s. The manual
/// fix (and, coincidentally, the layout shift LASER's presence causes —
/// modelled by `layout_perturbation`) aligns each block to a cache line.
fn lu_ncb(opts: &BuildOptions) -> WorkloadImage {
    let iters = scaled_iters(2200, opts);
    let file = "lu_ncb.c";
    let mut b = ProgramBuilder::new("lu_ncb");
    b.source(file, 130);
    let entry = b.block("entry");
    b.switch_to(entry);
    let (body, exit) = open_loop(&mut b, "daxpy");
    // Update a rotating element of this thread's block; the first element sits
    // on the line shared with the previous thread's block.
    b.source(file, 140);
    b.alu(
        laser_isa::AluOp::Rem,
        regs::SCRATCH_A,
        regs::IV,
        Operand::Imm(6),
    );
    b.alu(
        laser_isa::AluOp::Mul,
        regs::SCRATCH_A,
        regs::SCRATCH_A,
        Operand::Imm(8),
    );
    b.add(regs::SCRATCH_A, regs::SCRATCH_A, Operand::Reg(regs::DATA));
    b.mem_add(regs::SCRATCH_A, 0, Operand::Imm(3), 8);
    b.source(file, 150);
    b.nops(5);
    close_loop(&mut b, body, exit, iters);
    b.halt();
    let program = b.finish();

    let mut image = WorkloadImage::new("lu_ncb", program);
    image.set_time_dilation(INTENSE_DILATION);
    // Either the manual fix or the incidental layout shift caused by running
    // under a tool aligns each thread's block to its own cache lines.
    let aligned = opts.fixed || opts.layout_perturbation > 0;
    let block_bytes: u64 = 48; // 6 elements of 8 bytes
    if aligned {
        for t in 0..opts.threads {
            let block = image.layout_mut().heap_alloc(64, 64).expect("a block"); // lint:allow(panic) — workload images size their heaps to fit; allocation failure is a builder bug
            image.push_thread(
                ThreadSpec::new(format!("lu{t}"), "entry")
                    .with_reg(regs::DATA, block)
                    .with_reg(regs::TID, t as u64),
            );
        }
    } else {
        let a = image
            .layout_mut()
            .heap_alloc(block_bytes * opts.threads as u64 + 64, 1)
            .expect("a matrix"); // lint:allow(panic) — workload images size their heaps to fit; allocation failure is a builder bug
        for t in 0..opts.threads {
            image.push_thread(
                ThreadSpec::new(format!("lu{t}"), "entry")
                    .with_reg(regs::DATA, a + block_bytes * t as u64)
                    .with_reg(regs::TID, t as u64),
            );
        }
    }
    image
}

/// `volrend`: every work item bumps the `Global->Queue` counter under a naive
/// spin lock. The fixed variant batches the increments with a single atomic
/// every eight items, which cuts the HITM rate by an order of magnitude but —
/// as the paper observes — does not change runtime meaningfully.
fn volrend(opts: &BuildOptions) -> WorkloadImage {
    let iters = scaled_iters(1700, opts);
    let file = "volrend.c";
    let mut b = ProgramBuilder::new("volrend");
    b.source(file, 200);
    let entry = b.block("entry");
    b.switch_to(entry);
    let (body, exit) = open_loop(&mut b, "rays");
    // Private ray work.
    b.source(file, 205);
    b.load(regs::VAL, regs::DATA, 0, 8);
    b.addi(regs::VAL, regs::VAL, 1);
    b.store(Operand::Reg(regs::VAL), regs::DATA, 0, 8);
    b.nops(6);
    if opts.fixed {
        // Batched atomic increment: once every 8 rays.
        b.alu(
            laser_isa::AluOp::Rem,
            regs::SCRATCH_A,
            regs::IV,
            Operand::Imm(8),
        );
        b.cmp_eq(regs::COND, regs::SCRATCH_A, Operand::Imm(0));
        let bump = b.block("bump");
        let join = b.block("join");
        b.branch(regs::COND, bump, join);
        b.switch_to(bump);
        b.source(file, 215);
        b.atomic_fetch_add(regs::SCRATCH_A, regs::SHARED, 64, Operand::Imm(8), 8);
        b.jump(join);
        b.switch_to(join);
    } else {
        b.source(file, 210);
        emit_lock_acquire(&mut b, "queue", regs::SHARED, 0, true);
        b.mem_add(regs::SHARED, 64, Operand::Imm(1), 8);
        emit_lock_release(&mut b, regs::SHARED, 0);
    }
    close_loop(&mut b, body, exit, iters);
    b.halt();
    let program = b.finish();

    let mut image = WorkloadImage::new("volrend", program);
    image.set_time_dilation(MILD_DILATION);
    if opts.layout_perturbation > 0 {
        image.layout_mut().perturb_heap(opts.layout_perturbation);
    }
    let queue = image.layout_mut().global_alloc(128, 64);
    for t in 0..opts.threads {
        let buf = image.layout_mut().heap_alloc(64, 64).expect("ray buffer"); // lint:allow(panic) — workload images size their heaps to fit; allocation failure is a builder bug
        image.push_thread(
            ThreadSpec::new(format!("vol{t}"), "entry")
                .with_reg(regs::DATA, buf)
                .with_reg(regs::SHARED, queue)
                .with_reg(regs::TID, t as u64),
        );
    }
    image
}

/// `water_nsquared`: mostly private molecular updates with an occasional
/// lock-protected global accumulation; synchronization-heavy enough that the
/// Sheriff execution model (which pays at every lock) slows it dramatically,
/// while LASER does not.
fn water_nsquared(opts: &BuildOptions) -> WorkloadImage {
    locked_accumulator("water_nsquared", "water_nsquared.c", opts, 2600, 12, 4)
}

#[cfg(test)]
mod tests {
    use super::*;
    use laser_machine::{Machine, MachineConfig};

    fn run(image: &WorkloadImage) -> laser_machine::RunResult {
        Machine::new(MachineConfig::default(), image)
            .run_to_completion()
            .unwrap()
    }

    fn small() -> BuildOptions {
        BuildOptions::scaled(0.15)
    }

    #[test]
    fn lu_ncb_false_shares_until_aligned() {
        let buggy = run(&lu_ncb(&small()));
        assert!(
            buggy.stats.hitm_events > 300,
            "hitms {}",
            buggy.stats.hitm_events
        );
        let fixed = run(&lu_ncb(&BuildOptions {
            fixed: true,
            ..small()
        }));
        assert!(fixed.stats.hitm_events < buggy.stats.hitm_events / 10);
        assert!(fixed.cycles < buggy.cycles);
        // The incidental layout shift from running under a tool has the same
        // effect as the manual fix (the paper's 30% observation).
        let perturbed = run(&lu_ncb(&BuildOptions {
            layout_perturbation: 32,
            ..small()
        }));
        assert!(perturbed.stats.hitm_events < buggy.stats.hitm_events / 10);
    }

    #[test]
    fn volrend_lock_contends_and_batching_reduces_hitms() {
        let buggy = run(&volrend(&small()));
        let fixed = run(&volrend(&BuildOptions {
            fixed: true,
            ..small()
        }));
        assert!(buggy.stats.hitm_events > 200);
        assert!(fixed.stats.hitm_events < buggy.stats.hitm_events / 4);
    }

    #[test]
    fn water_nsquared_synchronizes_frequently() {
        let r = run(&water_nsquared(&small()));
        assert!(r.stats.atomics > 100, "locks should be taken often");
    }

    #[test]
    fn splash2x_registry_entries_build() {
        for spec in all() {
            let image = spec.build(&BuildOptions::scaled(0.05));
            assert!(!image.threads().is_empty(), "{}", spec.name);
        }
    }
}
