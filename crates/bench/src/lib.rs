//! # laser-bench
//!
//! The experiment harness that regenerates every table and figure of the
//! LASER paper's evaluation (Section 7) from the simulated system:
//!
//! | Paper artifact | Function | Binary sub-command | Criterion bench |
//! |---|---|---|---|
//! | Figure 2 | [`characterization::fig2_layout`] | `experiments fig2` | — |
//! | Figure 3 | [`characterization::fig3_characterization`] | `experiments fig3` | `fig3_characterization` |
//! | Table 1 | [`accuracy::table1_accuracy`] | `experiments table1` | `table1_accuracy` |
//! | Table 2 | [`accuracy::table2_types`] | `experiments table2` | `table2_type` |
//! | Figure 9 | [`accuracy::fig9_threshold_sweep`] | `experiments fig9` | `fig9_threshold` |
//! | Figure 10 | [`performance::fig10_overhead`] | `experiments fig10` | `fig10_overhead` |
//! | Figure 11 | [`performance::fig11_speedups`] | `experiments fig11` | `fig11_speedup` |
//! | Figure 12 | [`performance::fig12_breakdown`] | `experiments fig12` | `fig12_breakdown` |
//! | Figure 13 | [`performance::fig13_sav_sweep`] | `experiments fig13` | `fig13_sav` |
//! | Figure 14 | [`performance::fig14_sheriff`] | `experiments fig14` | `fig14_sheriff` |
//!
//! Absolute numbers are simulated cycles, not the paper's wall-clock seconds;
//! what is expected to match is the *shape* of each result: who wins, by
//! roughly what factor, and where the crossovers fall. `EXPERIMENTS.md` at the
//! repository root records paper-reported versus measured values side by side.

pub mod accuracy;
pub mod campaign;
pub mod characterization;
pub mod performance;
pub mod runner;
pub mod tool;

pub use campaign::{Campaign, CampaignResult, CellResult};
pub use runner::{geomean, ExperimentScale};
pub use tool::{
    default_tools, LaserTool, NativeTool, SheriffTool, Tool, ToolFailure, ToolRun, VtuneTool,
};
