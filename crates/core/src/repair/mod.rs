//! LASERREPAIR: online false-sharing repair with a software store buffer
//! (paper Section 5).
//!
//! The three pieces:
//!
//! * [`plan::RepairPlan`] — the static analysis that decides which basic
//!   blocks to instrument, where to place flushes, which loads may
//!   speculatively skip the SSB, and whether repair is profitable at all;
//! * [`ssb::SoftwareStoreBuffer`] — the thread-private coalescing buffer;
//! * [`hook::SsbHook`] — the dynamic-instrumentation tool that applies the
//!   plan to a running machine through the Pin-like hook interface,
//!   preserving single-threaded semantics and TSO (flushes are hardware
//!   transactions).

pub mod hook;
pub mod plan;
pub mod ssb;

pub use hook::{SsbCosts, SsbHook, SsbStats, PREEMPTIVE_FLUSH_ENTRIES};
pub use plan::RepairPlan;
pub use ssb::{SoftwareStoreBuffer, SsbLookup};
