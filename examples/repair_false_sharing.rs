//! Online-repair walk-through: run `histogram'` natively, under LASER with
//! repair disabled, and under full LASER (detection + the software-store-
//! buffer repair), then compare against the manually fixed binary — the
//! single-workload version of the paper's Figure 11.

use laser::workloads::{find, BuildOptions};
use laser::{Laser, LaserConfig};

fn main() {
    let spec = find("histogram'").expect("histogram' is registered");
    let opts = BuildOptions::scaled(0.5);
    let image = spec.build(&opts);

    let native = Laser::run_native(&image).expect("native run");
    let detect_only = Laser::new(LaserConfig::detection_only())
        .run(&image)
        .expect("detection run");
    let repaired = Laser::new(LaserConfig::default())
        .run(&image)
        .expect("repair run");
    let fixed_image = spec.build(&BuildOptions {
        fixed: true,
        ..opts
    });
    let manual = Laser::run_native(&fixed_image).expect("fixed run");

    let norm = |c: u64| c as f64 / native.cycles as f64;
    println!("histogram' (input that induces false sharing):");
    println!(
        "  native:                 {:>10} cycles  (1.00x)",
        native.cycles
    );
    println!(
        "  LASER, detection only:  {:>10} cycles  ({:.2}x)",
        detect_only.run.cycles,
        norm(detect_only.run.cycles)
    );
    println!(
        "  LASER with repair:      {:>10} cycles  ({:.2}x)",
        repaired.run.cycles,
        norm(repaired.run.cycles)
    );
    println!(
        "  manual padding fix:     {:>10} cycles  ({:.2}x)",
        manual.cycles,
        norm(manual.cycles)
    );

    match &repaired.repair {
        Some(summary) => {
            println!("\nrepair details:");
            println!("  triggered at cycle {}", summary.triggered_at_cycle);
            println!(
                "  instrumented {} blocks, flush at {} block(s), {:.0} stores per flush (estimate)",
                summary.plan.instrumented_blocks.len(),
                summary.plan.flush_blocks.len(),
                summary.plan.estimated_stores_per_flush
            );
            println!(
                "  {} stores buffered, {} SSB load hits, {} flushes ({} transactional)",
                summary.stats.buffered_stores,
                summary.stats.ssb_load_hits,
                summary.stats.flushes,
                summary.stats.htm_flushes
            );
        }
        None => println!("\nrepair did not trigger at this scale"),
    }
}
