//! Property-style tests of the core data structures and invariants:
//! the software store buffer must be equivalent to writing through to memory,
//! lookups must never invent data, and the simulator must be deterministic.
//!
//! The original seed used `proptest`; the build environment has no crates.io
//! access, so the same properties are exercised with a small deterministic
//! case generator (fixed seeds, many cases) instead of shrinking strategies.

use std::collections::HashMap;

use laser::core::repair::ssb::{SoftwareStoreBuffer, SsbLookup};
use laser::isa::inst::{Operand, Reg};
use laser::isa::ProgramBuilder;
use laser::machine::{Machine, MachineConfig, ThreadSpec, WorkloadImage};

/// A tiny deterministic generator (splitmix64) standing in for proptest
/// strategies.
struct Gen(u64);

impl Gen {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.next() % (hi - lo)
    }

    /// A store op: address within a few cache lines, size 1..=8, masked value.
    fn store_op(&mut self) -> (u64, u8, u64) {
        let addr = self.range(0x1000, 0x1100);
        let size = self.range(1, 9) as u8;
        let raw = self.next();
        let value = if size >= 8 {
            raw
        } else {
            raw & ((1u64 << (8 * size)) - 1)
        };
        (addr, size, value)
    }
}

/// A reference "memory" for the SSB equivalence property.
#[derive(Default)]
struct RefMem {
    bytes: HashMap<u64, u8>,
}

impl RefMem {
    fn write(&mut self, addr: u64, size: u8, value: u64) {
        for i in 0..size as u64 {
            self.bytes.insert(addr + i, (value >> (8 * i)) as u8);
        }
    }
    fn read(&self, addr: u64, size: u8) -> u64 {
        let mut v = 0u64;
        for i in 0..size as u64 {
            v |= (*self.bytes.get(&(addr + i)).unwrap_or(&0) as u64) << (8 * i);
        }
        v
    }
}

/// Buffering stores in the SSB and flushing them produces exactly the same
/// memory image as writing them straight through, regardless of aliasing,
/// overlap or access size — the single-threaded-semantics invariant of
/// Section 5.2.
#[test]
fn ssb_flush_is_equivalent_to_write_through() {
    for seed in 0..200u64 {
        let mut g = Gen(seed);
        let n = g.range(1, 60) as usize;
        let mut ssb = SoftwareStoreBuffer::new();
        let mut direct = RefMem::default();
        let mut backing = RefMem::default();
        for _ in 0..n {
            let (addr, size, value) = g.store_op();
            direct.write(addr, size, value);
            ssb.put(addr, size, value);
        }
        for (addr, size, value) in ssb.drain_writes() {
            backing.write(addr, size, value);
        }
        assert!(ssb.is_empty());
        for addr in 0x1000u64..0x1110 {
            assert_eq!(
                direct.read(addr, 1),
                backing.read(addr, 1),
                "seed {seed}: byte at {addr:#x}"
            );
        }
    }
}

/// Loads served from the SSB always see the latest buffered value, and
/// lookups never invent data: a miss means no byte of the range was buffered.
#[test]
fn ssb_lookup_agrees_with_write_through() {
    for seed in 0..200u64 {
        let mut g = Gen(seed ^ 0xABCD);
        let n = g.range(1, 40) as usize;
        let mut ssb = SoftwareStoreBuffer::new();
        let mut direct = RefMem::default();
        let mut ops = Vec::new();
        for _ in 0..n {
            let (addr, size, value) = g.store_op();
            direct.write(addr, size, value);
            ssb.put(addr, size, value);
            ops.push((addr, size));
        }
        for (addr, size) in ops {
            match ssb.lookup(addr, size) {
                SsbLookup::Hit(v) => assert_eq!(v, direct.read(addr, size), "seed {seed}"),
                SsbLookup::Partial => {
                    // Merge over two distinct backgrounds. A buffered byte
                    // overrides both backgrounds identically (and must match
                    // the write-through image); an unbuffered byte shows each
                    // background untouched. This catches a merge() that
                    // ignores the buffer: its output would track the
                    // background on every byte.
                    let m0 = ssb.merge(addr, size, 0);
                    let m1 = ssb.merge(addr, size, u64::MAX);
                    let reference = direct.read(addr, size);
                    let mut buffered_bytes = 0;
                    for i in 0..size as u64 {
                        let b0 = (m0 >> (8 * i)) & 0xff;
                        let b1 = (m1 >> (8 * i)) & 0xff;
                        let rbyte = (reference >> (8 * i)) & 0xff;
                        if b0 == b1 {
                            buffered_bytes += 1;
                            assert_eq!(b0, rbyte, "seed {seed}: buffered byte {i}");
                        } else {
                            assert!(
                                b0 == 0 && b1 == 0xff,
                                "seed {seed}: unbuffered byte {i} must show the background"
                            );
                        }
                    }
                    // Partial means some — but not all — bytes are buffered.
                    assert!(
                        buffered_bytes > 0 && buffered_bytes < size as u64,
                        "seed {seed}: partial lookup with {buffered_bytes}/{size} buffered"
                    );
                }
                SsbLookup::Miss => {
                    assert!(!ssb.overlaps(addr, size), "seed {seed}");
                }
            }
        }
    }
}

/// The machine is deterministic: the same image run twice produces the same
/// cycle count, statistics and memory contents.
#[test]
fn machine_execution_is_deterministic() {
    for seed in 0..12u64 {
        let mut g = Gen(seed.wrapping_mul(0x5DEECE66D));
        let iters = g.range(1, 200);
        let nthreads = g.range(2, 4) as usize;
        let offsets: Vec<u64> = (0..nthreads).map(|_| g.range(0, 8)).collect();

        let mut b = ProgramBuilder::new("prop");
        b.source("prop.c", 1);
        let entry = b.block("entry");
        let body = b.block("body");
        let exit = b.block("exit");
        b.switch_to(entry);
        b.movi(Reg(2), 0);
        b.jump(body);
        b.switch_to(body);
        b.mem_add(Reg(0), 0, Operand::Imm(1), 8);
        b.addi(Reg(2), Reg(2), 1);
        b.cmp_lt(Reg(3), Reg(2), Operand::Imm(iters));
        b.branch(Reg(3), body, exit);
        b.switch_to(exit);
        b.halt();
        let program = b.finish();
        let mut image = WorkloadImage::new("prop", program);
        let base = image.layout_mut().heap_alloc(64, 64).unwrap();
        for (t, off) in offsets.iter().enumerate() {
            image.push_thread(
                ThreadSpec::new(format!("t{t}"), "entry").with_reg(Reg(0), base + off * 8),
            );
        }
        let mut a = Machine::new(MachineConfig::default(), &image);
        let mut c = Machine::new(MachineConfig::default(), &image);
        let ra = a.run_to_completion().unwrap();
        let rc = c.run_to_completion().unwrap();
        assert_eq!(ra.cycles, rc.cycles, "seed {seed}");
        assert_eq!(ra.stats, rc.stats, "seed {seed}");
        for off in &offsets {
            assert_eq!(
                a.read_u64(base + off * 8),
                c.read_u64(base + off * 8),
                "seed {seed}"
            );
        }
    }
}

/// Coherence bookkeeping: every access is counted exactly once, so the outcome
/// classes partition the memory accesses.
#[test]
fn access_classes_partition_memory_accesses() {
    for seed in 0..12u64 {
        let mut g = Gen(seed ^ 0x0051_CADE);
        let iters = g.range(1, 150);
        let threads = g.range(1, 4) as usize;
        let mut b = ProgramBuilder::new("partition");
        let entry = b.block("entry");
        let body = b.block("body");
        let exit = b.block("exit");
        b.switch_to(entry);
        b.movi(Reg(2), 0);
        b.jump(body);
        b.switch_to(body);
        b.load(Reg(1), Reg(0), 0, 8);
        b.store(Operand::Reg(Reg(1)), Reg(0), 8, 8);
        b.addi(Reg(2), Reg(2), 1);
        b.cmp_lt(Reg(3), Reg(2), Operand::Imm(iters));
        b.branch(Reg(3), body, exit);
        b.switch_to(exit);
        b.halt();
        let program = b.finish();
        let mut image = WorkloadImage::new("partition", program);
        let base = image.layout_mut().heap_alloc(64, 64).unwrap();
        for t in 0..threads {
            image.push_thread(ThreadSpec::new(format!("t{t}"), "entry").with_reg(Reg(0), base));
        }
        let mut m = Machine::new(MachineConfig::default(), &image);
        let r = m.run_to_completion().unwrap();
        let accesses = r.stats.loads + r.stats.stores + r.stats.atomics;
        let classified =
            r.stats.l1_hits + r.stats.llc_hits + r.stats.hitm_events + r.stats.dram_accesses;
        assert_eq!(accesses, classified, "seed {seed}");
        assert_eq!(
            r.stats.hitm_events,
            r.stats.hitm_loads + r.stats.hitm_stores,
            "seed {seed}"
        );
    }
}
