//! A VTune Amplifier-style profiler model.
//!
//! Per the paper (Section 7.1–7.2), VTune:
//!
//! * uses the same PEBS HITM events as LASER but "configures the PEBS
//!   mechanism to raise an interrupt after each HITM event for improved
//!   accuracy (which has significant performance ramifications)";
//! * runs heavier always-on profiling machinery, giving it an 84 % average
//!   slowdown and a 7× worst case even on contention-free programs;
//! * "simply reports source code locations where HITM events arise": no
//!   spurious-record filtering, no stack filtering, and no true-vs-false
//!   sharing classification — hence more false positives.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use laser_core::LaserError;
use laser_isa::program::SourceLoc;
use laser_machine::{Machine, MachineConfig, RunResult, RunStatus, WorkloadImage};
use laser_pebs::driver::{Driver, DriverConfig};
use laser_pebs::imprecision::{ImprecisionModel, ImprecisionParams};
use laser_pebs::pmu::{Pmu, PmuConfig};

/// VTune model configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VtuneConfig {
    /// Reporting threshold in HITM records per second. The paper applies a
    /// 2 000/s threshold to VTune's output to give it the benefit of the
    /// doubt.
    pub rate_threshold: f64,
    /// General profiling machinery: one sampling interruption every this many
    /// instructions, independent of HITM activity.
    pub sampling_interval_insts: u64,
    /// Cost of each such interruption, charged to every core.
    pub sample_cost_cycles: u64,
    /// Driver overhead parameters (interrupt-per-record mode).
    pub driver: DriverConfig,
    /// Record imprecision (same hardware as LASER).
    pub imprecision: ImprecisionParams,
    /// Poll interval in instructions.
    pub poll_interval_steps: u64,
    /// Seed for the imprecision model.
    pub seed: u64,
}

impl Default for VtuneConfig {
    fn default() -> Self {
        VtuneConfig {
            rate_threshold: 2_000.0,
            sampling_interval_insts: 900,
            sample_cost_cycles: 420,
            driver: DriverConfig {
                interrupt_cycles: 3000,
                per_record_cycles: 120,
            },
            imprecision: ImprecisionParams::default(),
            poll_interval_steps: 20_000,
            seed: 0x77AB1E,
        }
    }
}

/// A source line VTune reports, with its record count and rate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VtuneLine {
    /// Reported location (`[unknown]` for records outside the binary, which
    /// VTune does not filter).
    pub location: SourceLoc,
    /// HITM records attributed to the line.
    pub records: u64,
    /// Records per second of dilated benchmark time.
    pub rate_per_sec: f64,
}

/// The result of profiling one workload with the VTune model.
#[derive(Debug, Clone)]
pub struct VtuneOutcome {
    /// The machine run, with all profiling overhead charged.
    pub run: RunResult,
    /// Reported lines above the rate threshold, ordered by record count.
    pub reported_lines: Vec<VtuneLine>,
    /// Total records collected.
    pub total_records: u64,
}

impl VtuneOutcome {
    /// Reported source locations.
    pub fn reported_locations(&self) -> Vec<&SourceLoc> {
        self.reported_lines.iter().map(|l| &l.location).collect()
    }
}

/// The VTune profiler model.
#[derive(Debug, Clone, Default)]
pub struct Vtune {
    config: VtuneConfig,
}

impl Vtune {
    /// Create a profiler with the given configuration.
    pub fn new(config: VtuneConfig) -> Self {
        Vtune { config }
    }

    /// The configuration in effect.
    pub fn config(&self) -> &VtuneConfig {
        &self.config
    }

    /// Profile `image` on the default (single-socket) machine.
    ///
    /// # Errors
    /// Returns an error if the workload exceeds the machine's step budget.
    pub fn run(&self, image: &WorkloadImage) -> Result<VtuneOutcome, LaserError> {
        self.run_on(image, MachineConfig::default())
    }

    /// Profile `image` on an explicit machine configuration (e.g. a
    /// multi-socket topology preset via [`MachineConfig::for_topology`]).
    ///
    /// # Errors
    /// Returns an error if the workload exceeds the machine's step budget.
    pub fn run_on(
        &self,
        image: &WorkloadImage,
        machine_config: MachineConfig,
    ) -> Result<VtuneOutcome, LaserError> {
        let num_cores = machine_config.num_cores;
        let max_steps = machine_config.max_steps;
        let mut machine = Machine::new(machine_config, image);
        let program = image.program();
        let model = ImprecisionModel::new(
            self.config.imprecision,
            image.memory_map(),
            (program.base_pc(), program.end_pc()),
            self.config.seed,
        );
        // Interrupt on every sampled record, SAV=1: maximum timeliness,
        // maximum overhead.
        let pmu = Pmu::new(
            PmuConfig {
                sav: 1,
                interrupt_on_each_sample: true,
                num_cores,
                ..Default::default()
            },
            model,
        );
        let mut driver = Driver::new(pmu, self.config.driver);

        let mut per_line: BTreeMap<SourceLoc, u64> = BTreeMap::new();
        let mut total_records = 0u64;
        let mut last_steps = 0u64;
        loop {
            let status = machine.run_steps(self.config.poll_interval_steps);
            driver.poll(&mut machine);
            // Always-on profiling machinery, independent of HITM activity.
            let executed = machine.steps() - last_steps;
            last_steps = machine.steps();
            let samples = executed / self.config.sampling_interval_insts.max(1);
            if samples > 0 {
                machine
                    .charge_all_cores(samples * self.config.sample_cost_cycles / num_cores as u64);
            }
            for r in driver.read_records() {
                total_records += 1;
                let loc = program
                    .source_of(r.pc)
                    .cloned()
                    .unwrap_or_else(|| SourceLoc::new("[unknown]", 0));
                *per_line.entry(loc).or_insert(0) += 1;
            }
            if status == RunStatus::Done {
                break;
            }
            if machine.steps() >= max_steps {
                return Err(LaserError::Machine(
                    laser_machine::machine::MachineError::MaxStepsExceeded { steps: max_steps },
                ));
            }
        }
        driver.flush();
        for r in driver.read_records() {
            total_records += 1;
            let loc = program
                .source_of(r.pc)
                .cloned()
                .unwrap_or_else(|| SourceLoc::new("[unknown]", 0));
            *per_line.entry(loc).or_insert(0) += 1;
        }

        let elapsed = machine.elapsed_benchmark_seconds().max(1e-9);
        let mut reported_lines: Vec<VtuneLine> = per_line
            .into_iter()
            .map(|(location, records)| VtuneLine {
                location,
                records,
                rate_per_sec: records as f64 / elapsed,
            })
            .filter(|l| l.rate_per_sec >= self.config.rate_threshold)
            .collect();
        reported_lines.sort_by(|a, b| b.records.cmp(&a.records).then(a.location.cmp(&b.location)));
        Ok(VtuneOutcome {
            run: machine.result(),
            reported_lines,
            total_records,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use laser_core::Laser;
    use laser_workloads::{find, BuildOptions};

    #[test]
    fn vtune_is_much_slower_than_laser_on_contended_code() {
        let image = find("histogram'")
            .unwrap()
            .build(&BuildOptions::scaled(0.2));
        let native = Laser::run_native(&image).unwrap();
        let laser = Laser::new(laser_core::LaserConfig::detection_only())
            .run(&image)
            .unwrap();
        let vtune = Vtune::default().run(&image).unwrap();
        let laser_norm = laser.run.cycles as f64 / native.cycles as f64;
        let vtune_norm = vtune.run.cycles as f64 / native.cycles as f64;
        assert!(
            vtune_norm > laser_norm,
            "vtune {vtune_norm} vs laser {laser_norm}"
        );
        assert!(
            vtune_norm > 1.10,
            "vtune overhead should be substantial: {vtune_norm}"
        );
    }

    #[test]
    fn vtune_slows_down_even_contention_free_programs() {
        let image = find("string_match")
            .unwrap()
            .build(&BuildOptions::scaled(0.2));
        let native = Laser::run_native(&image).unwrap();
        let vtune = Vtune::default().run(&image).unwrap();
        let norm = vtune.run.cycles as f64 / native.cycles as f64;
        assert!(
            norm > 1.2,
            "always-on profiling should cost something: {norm}"
        );
        assert!(vtune.reported_lines.is_empty());
    }

    #[test]
    fn vtune_reports_contended_lines_without_classification() {
        let image = find("histogram'")
            .unwrap()
            .build(&BuildOptions::scaled(0.3));
        let vtune = Vtune::default().run(&image).unwrap();
        assert!(vtune.total_records > 0);
        assert!(
            vtune
                .reported_lines
                .iter()
                .any(|l| l.location.file == "histogram.c"),
            "reported: {:?}",
            vtune.reported_locations()
        );
    }
}
