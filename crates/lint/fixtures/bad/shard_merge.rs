//! Bad fixture: combining per-shard detector state with no visible ordering
//! step. Expected findings: `shard-merge` (two) — the free merge function and
//! the method-form absorb both fold shard results in arrival order, so their
//! output is only byte-identical to the single-worker path by accident.

pub struct ShardTotals {
    lines: Vec<(u64, u64)>,
}

/// Folds shard outputs in the order the shards happen to finish.
pub fn merge_shard_reports(shards: Vec<Vec<(u64, u64)>>) -> Vec<(u64, u64)> {
    let mut out = Vec::new();
    for shard in shards {
        out.extend(shard);
    }
    out
}

impl ShardTotals {
    /// Absorbs one shard's lines without re-establishing a total order.
    pub fn absorb(&mut self, shard: Vec<(u64, u64)>) {
        self.lines.extend(shard);
    }
}

/// A combiner that never touches shard state is out of scope: ordering is
/// rule territory only once per-shard results are in play.
pub fn merge_pair(a: Vec<u64>, b: Vec<u64>) -> Vec<u64> {
    let mut out = a;
    out.extend(b);
    out
}
