//! Offline stand-in for the `serde` facade.
//!
//! Re-exports the no-op `Serialize` / `Deserialize` derives so that
//! `use serde::{Deserialize, Serialize};` plus `#[derive(...)]` compiles
//! without network access. The derives are inert markers — no trait impls are
//! generated and nothing in this workspace performs (de)serialization.

pub use serde_derive::{Deserialize, Serialize};
