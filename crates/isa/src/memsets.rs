//! Load/store set extraction.
//!
//! LASERDETECT analyses the application binary at runtime "to construct load
//! and store sets identifying load PCs and store PCs and their sizes"
//! (Section 4.3). The detector uses these sets to interpret a HITM record's PC
//! as a load or a store of a known width, which feeds the cache-line model
//! that classifies true vs false sharing.

use std::collections::BTreeMap;

use crate::program::{Pc, Program};

/// The load and store sets of a program: PC → access size in bytes.
///
/// Instructions that both read and write memory (atomic read-modify-writes,
/// like x86 `lock` instructions) appear in **both** sets, which the paper
/// notes as a potential source of detector inaccuracy.
#[derive(Debug, Clone, Default)]
pub struct MemAccessSets {
    loads: BTreeMap<Pc, u8>,
    stores: BTreeMap<Pc, u8>,
}

impl MemAccessSets {
    /// Analyse `program` and build its load/store sets.
    pub fn analyze(program: &Program) -> Self {
        let mut loads = BTreeMap::new();
        let mut stores = BTreeMap::new();
        for (pc, _slot) in program.iter_pcs() {
            if let Some(inst) = program.inst_at(pc) {
                if let Some(size) = inst.access_size() {
                    if inst.is_load() {
                        loads.insert(pc, size);
                    }
                    if inst.is_store() {
                        stores.insert(pc, size);
                    }
                }
            }
        }
        MemAccessSets { loads, stores }
    }

    /// Access size if `pc` is a load instruction.
    pub fn load_size(&self, pc: Pc) -> Option<u8> {
        self.loads.get(&pc).copied()
    }

    /// Access size if `pc` is a store instruction.
    pub fn store_size(&self, pc: Pc) -> Option<u8> {
        self.stores.get(&pc).copied()
    }

    /// True if `pc` is in the load set.
    pub fn is_load(&self, pc: Pc) -> bool {
        self.loads.contains_key(&pc)
    }

    /// True if `pc` is in the store set.
    pub fn is_store(&self, pc: Pc) -> bool {
        self.stores.contains_key(&pc)
    }

    /// Number of load PCs.
    pub fn num_loads(&self) -> usize {
        self.loads.len()
    }

    /// Number of store PCs.
    pub fn num_stores(&self) -> usize {
        self.stores.len()
    }

    /// Iterate over all load PCs and sizes, in ascending PC order.
    pub fn loads(&self) -> impl Iterator<Item = (Pc, u8)> + '_ {
        self.loads.iter().map(|(&pc, &s)| (pc, s))
    }

    /// Iterate over all store PCs and sizes, in ascending PC order.
    pub fn stores(&self) -> impl Iterator<Item = (Pc, u8)> + '_ {
        self.stores.iter().map(|(&pc, &s)| (pc, s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::inst::{Operand, Reg};

    #[test]
    fn loads_stores_and_rmws_are_classified() {
        let mut b = ProgramBuilder::new("memsets");
        let blk = b.block("b");
        b.switch_to(blk);
        b.load(Reg(1), Reg(0), 0, 8); // pc base+0
        b.store(Operand::Imm(1), Reg(0), 8, 4); // pc base+4
        b.atomic_fetch_add(Reg(2), Reg(0), 16, Operand::Imm(1), 8); // pc base+8
        b.nop(); // pc base+12
        b.halt();
        let p = b.finish();
        let sets = MemAccessSets::analyze(&p);
        let base = p.base_pc();
        assert_eq!(sets.load_size(base), Some(8));
        assert!(!sets.is_store(base));
        assert_eq!(sets.store_size(base + 4), Some(4));
        assert!(!sets.is_load(base + 4));
        // RMW is in both sets.
        assert!(sets.is_load(base + 8) && sets.is_store(base + 8));
        // Non-memory instruction is in neither.
        assert!(!sets.is_load(base + 12) && !sets.is_store(base + 12));
        assert_eq!(sets.num_loads(), 2);
        assert_eq!(sets.num_stores(), 2);
        assert_eq!(sets.loads().count(), 2);
        assert_eq!(sets.stores().count(), 2);
    }

    #[test]
    fn iteration_order_is_ascending_pc() {
        // Pin the deterministic iteration order: the sets are BTree-backed so
        // any consumer that walks them sees ascending PCs on every run.
        let mut b = ProgramBuilder::new("memsets-order");
        let blk = b.block("b");
        b.switch_to(blk);
        for i in 0..8 {
            b.load(Reg(1), Reg(0), i * 8, 8);
            b.store(Operand::Imm(i as u64), Reg(0), i * 8, 8);
        }
        b.halt();
        let p = b.finish();
        let sets = MemAccessSets::analyze(&p);
        let load_pcs: Vec<Pc> = sets.loads().map(|(pc, _)| pc).collect();
        let store_pcs: Vec<Pc> = sets.stores().map(|(pc, _)| pc).collect();
        let mut sorted = load_pcs.clone();
        sorted.sort_unstable();
        assert_eq!(load_pcs, sorted);
        let mut sorted = store_pcs.clone();
        sorted.sort_unstable();
        assert_eq!(store_pcs, sorted);
    }
}
