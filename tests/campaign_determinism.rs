//! The campaign runner's central guarantee: fanning a `workload × tool` grid
//! across a thread pool changes nothing but the wall-clock. A campaign run
//! with `threads = 1` (the reference serial execution) and with `threads = N`
//! must produce byte-identical aggregated results.

use laser_bench::{Campaign, LaserTool, NativeTool, SheriffTool, Tool, VtuneTool};
use laser_core::LaserConfig;
use laser_workloads::{registry, BuildOptions};

fn tools() -> Vec<Box<dyn Tool>> {
    vec![
        Box::new(NativeTool),
        Box::new(LaserTool::new(LaserConfig::detection_only())),
        Box::new(VtuneTool::default()),
        Box::new(SheriffTool::new(laser_baselines::SheriffMode::Detect)),
    ]
}

fn campaign(threads: usize) -> Campaign {
    Campaign::new(registry(), tools())
        .with_workload_names(&["histogram'", "swaptions", "linear_regression"])
        .expect("known workload names")
        .with_options(BuildOptions::scaled(0.08))
        .with_threads(threads)
}

#[test]
fn single_and_multi_threaded_campaigns_are_byte_identical() {
    let serial = campaign(1).run();
    let parallel = campaign(8).run();

    // Structural equality of every cell...
    assert_eq!(serial.cells, parallel.cells);
    // ...and byte-identical rendered output.
    assert_eq!(serial.render(), parallel.render());
    assert_eq!(serial.cells.len(), 12);
}

#[test]
fn repeated_parallel_runs_are_stable() {
    // Two parallel runs with the same thread count also agree — there is no
    // hidden dependence on scheduling at all.
    let a = campaign(4).run();
    let b = campaign(4).run();
    assert_eq!(a.cells, b.cells);
    assert_eq!(a.render(), b.render());
}
