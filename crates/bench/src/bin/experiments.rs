//! The experiment driver: regenerates every table and figure of the paper.
//!
//! ```text
//! experiments [all|campaign|fig2|fig3|table1|table2|fig9|fig10|fig11|fig12|fig13|fig14]
//!             [--scale S] [--threads N] [--only w1,w2,...] [--format text|json|csv]
//!             [--cell-budget-steps N] [--pipeline]
//! ```
//!
//! `--scale` multiplies every workload's input size (default 0.4); the paper's
//! qualitative results hold across scales, larger values just take longer.
//!
//! Every figure/table runs through the shared [`Grid`] cell cache: the driver
//! plans the union of the cells the selected experiments need, runs each
//! unique `(workload, tool)` cell exactly once on the parallel campaign
//! runner (`--threads`, default: all cores), and derives each experiment from
//! the cached cells. Per-cell progress streams to **stderr** as cells
//! complete; stdout carries only the aggregated output, which is
//! byte-identical whatever the thread count.
//!
//! `--format json` emits one JSON document per experiment (JSON Lines when
//! several are selected); `--format csv` emits one CSV table per experiment,
//! prefixed with a `# name` comment line when several are selected (fig2,
//! a layout demonstration with no tabular form, is skipped under csv).
//! `campaign` runs the full `workload × tool` grid and supports `--only` to
//! restrict the workload set.
//!
//! `--cell-budget-steps N` bounds every cell at `N` retired instructions: a
//! budget observer rides the run's event stream (LASER cells are cancelled
//! mid-flight, single-event tools are marked after completion) and an
//! over-budget cell is recorded as a `budget-exceeded` outcome without
//! disturbing the rest of the grid. Step budgets are deterministic, so the
//! output stays byte-identical whatever `--threads` is.
//!
//! `--pipeline` deploys every LASER cell with its detector stage on a worker
//! thread, overlapped with the simulated quantum behind a double-buffered
//! record channel (see `laser_core::PipelineConfig`). Pipelining raises
//! throughput when cells are fewer than worker threads; the output is
//! **byte-identical** to a non-pipelined run — CI diffs the two to prove it.
//!
//! `--shards N` shards the pipelined detector stage over `N` worker threads
//! (and implies `--pipeline`). Records route to shards by cache-line hash, so
//! every line's observation sequence is preserved and the merged output stays
//! **byte-identical** to inline and single-worker runs for every shard count —
//! CI diffs `--shards 4` against `--shards 1` to prove it. `--shard-routing
//! socket` instead routes each record by the socket of its sampling core
//! (deterministic, but not inline-identical: it models one detector core per
//! socket, where a contended line's records can split across shards).
//!
//! `--topology flat|2s|4s` deploys every cell's machine on a socket-topology
//! preset (4 cores per socket, threads scaled to match, multi-socket
//! placement round-robin across sockets); `flat` is the default and is
//! byte-identical to the pre-topology behaviour. fig2 and fig3 are derived
//! outside the workload grid, so a non-flat preset skips them (with a note)
//! rather than passing flat results off as multi-socket data. The `xsocket`
//! subcommand
//! sweeps the headline false-sharing workloads across *all* presets and
//! reports how the cross-socket HITM traffic — and repair's benefit — grows
//! with the socket count.
//!
//! Workload names in `--only` are validated up front: an unknown name in the
//! comma list (including an empty entry from a stray comma) is an error
//! before anything is simulated, never a silently smaller grid. Names are
//! exact — the alternative-input histogram really is called `histogram'`,
//! apostrophe included. Unknown `--topology` names are rejected the same
//! way.
//!
//! `--cache DIR` opens a persistent cell cache (`laser_bench::CellCache`):
//! every cell's full configuration is fingerprinted, previously-computed
//! cells are loaded instead of simulated, and new cells are written back for
//! the next invocation. Simulation is deterministic and the fingerprint
//! covers everything that feeds a cell, so a warm-cache rerun is
//! **byte-identical** to a cold one in every output format while simulating
//! zero cells — CI diffs the two to prove it. Cache statistics go to stderr
//! (never stdout), and `--cache-stats FILE` additionally writes them as JSON
//! to FILE.

use std::env;
use std::io::Write as _;
use std::process::ExitCode;
use std::sync::Arc;

use laser_bench::accuracy::{
    fig9_from_grid, fig9_thresholds, plan_fig9, plan_table1, plan_table2, table1_from_grid,
    table2_from_grid,
};
use laser_bench::characterization::{fig2_layout, fig3_characterization_on};
use laser_bench::emit::Emit;
use laser_bench::performance::{
    fig10_from_grid, fig11_from_grid, fig12_from_grid, fig13_from_grid, fig13_savs,
    fig14_from_grid, plan_fig10, plan_fig11, plan_fig12, plan_fig13, plan_fig14,
};
use laser_bench::scenario::MAX_DRIVER_LAG;
use laser_bench::xsocket::{plan_xsocket, xsocket_from_grid};
use laser_bench::{
    validate_workload_names, Campaign, CampaignProgress, CellBudget, CellCache, CustomTopology,
    ExperimentScale, Grid, GridResult, PipelineConfig, ShardRouting, TopologySpec,
};
use laser_workloads::registry;
use serde::json::Value;

const FIGURES: &[&str] = &[
    "fig2", "fig3", "table1", "table2", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14",
];

/// Experiments beyond the paper's figures. `xsocket` is not part of `all`
/// (which regenerates exactly the paper's artifacts); it is requested by
/// name.
const EXTRAS: &[&str] = &["xsocket"];

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Format {
    Text,
    Json,
    Csv,
}

impl Format {
    fn parse(s: &str) -> Option<Format> {
        match s {
            "text" => Some(Format::Text),
            "json" => Some(Format::Json),
            "csv" => Some(Format::Csv),
            _ => None,
        }
    }
}

const USAGE: &str = "usage: experiments [all|campaign|xsocket|fig2|fig3|table1|table2|fig9|fig10|\
                     fig11|fig12|fig13|fig14] [--scale S] [--threads N] [--only w1,w2,...] \
                     [--format text|json|csv] [--cell-budget-steps N] [--pipeline] \
                     [--shards N] [--driver-lag L] [--shard-routing line|socket] \
                     [--topology flat|2s|4s] [--topology-file FILE]\n\
                     \n\
                     --scale S             workload input-size multiplier (default 0.4;\n\
                     \x20                     xsocket defaults to 1.0)\n\
                     --threads N           campaign worker threads (default: all cores)\n\
                     --only w1,w2,...      campaign only: restrict to the named workloads\n\
                     \x20                     (validated up front; unknown names are an error)\n\
                     --format F            stdout format: text (default), json or csv\n\
                     --cell-budget-steps N bound every cell at N retired instructions\n\
                     --pipeline            run each LASER cell's detector stage on a worker\n\
                     \x20                     thread, overlapped with the simulated quantum\n\
                     \x20                     (byte-identical output, higher throughput)\n\
                     --shards N            shard the pipelined detector over N workers\n\
                     \x20                     (implies --pipeline; line-hash routing keeps\n\
                     \x20                     the output byte-identical for every N)\n\
                     --driver-lag L        defer each quantum's PMU charge by L quantum\n\
                     \x20                     boundaries (implies --pipeline; 0, the\n\
                     \x20                     default, is byte-identical to inline; L >= 1\n\
                     \x20                     is deterministic and usually faster)\n\
                     --shard-routing R     route records to shards by cache line (line,\n\
                     \x20                     the default) or by the sampling core's socket\n\
                     \x20                     (socket; deterministic but not inline-identical;\n\
                     \x20                     implies --pipeline)\n\
                     --topology T          deploy every cell on a socket-topology preset:\n\
                     \x20                     flat (default, single socket), 2s, 4s, 8s or\n\
                     \x20                     32s (4 cores/socket, threads scaled to match);\n\
                     \x20                     xsocket always sweeps flat/2s/4s/8s\n\
                     --topology-file FILE  campaign only: deploy every cell on a bespoke\n\
                     \x20                     asymmetric layout loaded from a JSON spec\n\
                     \x20                     (validated up front; replaces --topology and\n\
                     \x20                     is fingerprinted into the cell cache)\n\
                     --cache DIR           persistent cell cache: load previously-computed\n\
                     \x20                     cells instead of simulating, write new ones\n\
                     \x20                     back (warm reruns are byte-identical and\n\
                     \x20                     simulate nothing)\n\
                     --cache-stats FILE    write cache hit/miss statistics as JSON to FILE\n\
                     \x20                     (requires --cache; stderr always gets them)";

fn usage() -> ExitCode {
    eprintln!("{USAGE}");
    ExitCode::from(2)
}

/// Stderr progress sink: announce each cell as a worker claims it, and again
/// — with the result — when it finishes.
fn announce(progress: CampaignProgress) {
    match progress {
        CampaignProgress::Started { workload, tool, .. } => {
            eprintln!("        ... {workload} × {tool}");
        }
        CampaignProgress::Finished {
            done,
            total,
            cell,
            cached,
        } => {
            let origin = if cached { " [cached]" } else { "" };
            match &cell.outcome {
                Ok(run) => eprintln!(
                    "[{done}/{total}] {} × {}: ok ({} cycles, {} reported{}){origin}",
                    cell.workload,
                    cell.tool,
                    run.cycles,
                    run.reported.len(),
                    if run.repair_invoked { ", repaired" } else { "" }
                ),
                Err(failure) => eprintln!(
                    "[{done}/{total}] {} × {}: {failure}{origin}",
                    cell.workload, cell.tool
                ),
            }
        }
    }
}

/// Write an aggregated payload to stdout, surfacing write failures (a full
/// disk, a closed pipe) as a clean error instead of a `print!` panic.
fn write_stdout(payload: &str) -> Result<(), String> {
    let mut out = std::io::stdout().lock();
    out.write_all(payload.as_bytes())
        .and_then(|()| out.flush())
        .map_err(|e| format!("failed to write to stdout: {e}"))
}

#[allow(clippy::too_many_arguments)] // straight CLI-flag plumbing
fn run_campaign(
    scale: &ExperimentScale,
    threads: Option<usize>,
    only: &Option<Vec<String>>,
    budget: CellBudget,
    pipeline: PipelineConfig,
    topology: TopologySpec,
    custom: Option<Arc<CustomTopology>>,
    format: Format,
    cache: &Option<Arc<CellCache>>,
) -> Result<(), String> {
    let mut campaign = Campaign::default()
        .with_options(scale.options())
        .with_cell_budget(budget)
        .with_pipeline(pipeline)
        .with_topology(topology);
    if let Some(custom) = custom {
        campaign = campaign.with_custom_topology(custom);
    }
    if let Some(names) = only {
        // The names were validated at argument-parse time; revalidation here
        // keeps `Campaign::with_workload_names` the single source of truth.
        let names: Vec<&str> = names.iter().map(String::as_str).collect();
        campaign = campaign
            .with_workload_names(&names)
            .map_err(|e| e.to_string())?;
    }
    if let Some(n) = threads {
        campaign = campaign.with_threads(n);
    }
    if let Some(cache) = cache {
        campaign = campaign.with_cache(Arc::clone(cache));
    }
    eprintln!(
        "running {} cells on {} worker threads...",
        campaign.cells(),
        campaign.threads()
    );
    let result = campaign.run_with_progress(announce);
    match format {
        Format::Text => write_stdout(&result.render()),
        Format::Json => write_stdout(&format!("{}\n", result.to_json().render())),
        Format::Csv => write_stdout(&result.to_csv()),
    }
}

/// Experiments that do not run workloads through the grid, so a topology
/// preset cannot change them.
fn topology_independent(which: &str) -> bool {
    matches!(which, "fig2" | "fig3")
}

fn plan_one(which: &str, grid: &mut Grid) {
    match which {
        "xsocket" => plan_xsocket(grid),
        "table1" => plan_table1(grid),
        "table2" => plan_table2(grid),
        "fig9" => plan_fig9(grid),
        "fig10" => plan_fig10(grid),
        "fig11" => plan_fig11(grid),
        "fig12" => plan_fig12(grid),
        "fig13" => plan_fig13(grid, &fig13_savs()),
        "fig14" => plan_fig14(grid),
        // fig2 (a layout demonstration) and fig3 (characterization cases)
        // have no workload × tool cells.
        _ => {}
    }
}

/// Derive one experiment from the shared grid and format it. Returns the
/// stdout payload: `(text, json, csv)` selected by `format`.
fn derive_one(
    which: &str,
    grid: &Option<GridResult>,
    scale: &ExperimentScale,
    threads: usize,
    format: Format,
) -> Result<String, String> {
    let grid = |name: &str| -> Result<&GridResult, String> {
        grid.as_ref()
            .ok_or_else(|| format!("experiment {name} needs a grid (internal error)"))
    };
    let emit = |report: &dyn Emit| match format {
        Format::Text => unreachable!("text is rendered per report"),
        Format::Json => format!("{}\n", report.to_json().render()),
        Format::Csv => report.to_csv(),
    };
    let err = |e: laser_bench::ExperimentError| format!("experiment {which} failed: {e}");
    match which {
        "fig2" => match format {
            Format::Text => Ok(fig2_layout()),
            Format::Json => Ok(format!(
                "{}\n",
                Value::object()
                    .set("kind", "fig2")
                    .set("text", fig2_layout())
                    .render()
            )),
            Format::Csv => Err("fig2 is a layout demonstration with no csv form".to_string()),
        },
        "fig3" => {
            let per_category = if scale.workload_scale < 0.2 { 5 } else { 40 };
            let report = fig3_characterization_on(per_category, threads);
            Ok(match format {
                Format::Text => report.render(),
                _ => emit(&report),
            })
        }
        "table1" => {
            let report = table1_from_grid(grid(which)?).map_err(err)?;
            Ok(match format {
                Format::Text => report.render(),
                _ => emit(&report),
            })
        }
        "table2" => {
            let report = table2_from_grid(grid(which)?).map_err(err)?;
            Ok(match format {
                Format::Text => report.render(),
                _ => emit(&report),
            })
        }
        "fig9" => {
            let report = fig9_from_grid(grid(which)?, &fig9_thresholds()).map_err(err)?;
            Ok(match format {
                Format::Text => report.render(),
                _ => emit(&report),
            })
        }
        "fig10" => {
            let report = fig10_from_grid(grid(which)?).map_err(err)?;
            Ok(match format {
                Format::Text => report.render(),
                _ => emit(&report),
            })
        }
        "fig11" => {
            let report = fig11_from_grid(grid(which)?).map_err(err)?;
            Ok(match format {
                Format::Text => report.render(),
                _ => emit(&report),
            })
        }
        "fig12" => {
            let report = fig12_from_grid(grid(which)?, 0.10).map_err(err)?;
            Ok(match format {
                Format::Text => report.render(),
                _ => emit(&report),
            })
        }
        "fig13" => {
            let report = fig13_from_grid(grid(which)?, &fig13_savs()).map_err(err)?;
            Ok(match format {
                Format::Text => report.render(),
                _ => emit(&report),
            })
        }
        "fig14" => {
            let report = fig14_from_grid(grid(which)?).map_err(err)?;
            Ok(match format {
                Format::Text => report.render(),
                _ => emit(&report),
            })
        }
        "xsocket" => {
            let report = xsocket_from_grid(grid(which)?).map_err(err)?;
            Ok(match format {
                Format::Text => report.render(),
                _ => emit(&report),
            })
        }
        other => Err(format!("unknown experiment '{other}'")),
    }
}

fn run_figures(
    selected: &[&str],
    scale: &ExperimentScale,
    threads: Option<usize>,
    budget: CellBudget,
    pipeline: PipelineConfig,
    topology: TopologySpec,
    format: Format,
    cache: &Option<Arc<CellCache>>,
) -> Result<(), String> {
    // Resolve format incompatibilities before any cell is simulated: fig2
    // has no csv form, so an `all --format csv` run skips it (with a note)
    // instead of discarding the whole grid's work at derive time, and an
    // explicit `fig2 --format csv` fails up front.
    let selected: Vec<&str> = if format == Format::Csv && selected.contains(&"fig2") {
        if selected.len() == 1 {
            return Err("fig2 is a layout demonstration with no csv form".to_string());
        }
        eprintln!("skipping fig2: a layout demonstration with no csv form");
        selected.iter().copied().filter(|&s| s != "fig2").collect()
    } else {
        selected.to_vec()
    };

    // Same policy for the topology axis: fig2 (an allocator-layout demo) and
    // fig3 (PEBS record characterization on fixed two-thread cases) are
    // derived outside the workload grid, so a topology preset cannot apply
    // to them — skip them with a note rather than silently reporting flat
    // results as if they were 2s/4s data, and fail an explicit request.
    let selected: Vec<&str> = if topology != TopologySpec::Flat
        && selected.iter().any(|s| topology_independent(s))
    {
        if selected.iter().all(|s| topology_independent(s)) {
            return Err(format!(
                "{} is derived outside the workload grid; --topology does not apply",
                selected.join(", ")
            ));
        }
        for s in selected.iter().filter(|s| topology_independent(s)) {
            eprintln!("skipping {s}: derived outside the workload grid, --topology does not apply");
        }
        selected
            .iter()
            .copied()
            .filter(|s| !topology_independent(s))
            .collect()
    } else {
        selected
    };

    // One grid for everything selected: shared cells (every figure wants the
    // native baseline, both tables want laser-detect, ...) are planned once
    // and simulated once.
    let mut grid = Grid::new(*scale)
        .with_cell_budget(budget)
        .with_pipeline(pipeline)
        .with_topology(topology);
    if let Some(n) = threads {
        grid = grid.with_threads(n);
    }
    if let Some(cache) = cache {
        grid = grid.with_cache(Arc::clone(cache));
    }
    let grid_threads = grid.threads();
    for which in &selected {
        plan_one(which, &mut grid);
    }
    let total = grid.cells();
    let grid_result = if total > 0 {
        eprintln!("running {total} unique cells on {grid_threads} worker threads...");
        Some(grid.run_with_progress(announce))
    } else {
        None
    };

    let many = selected.len() > 1;
    for which in &selected {
        let payload = derive_one(which, &grid_result, scale, grid_threads, format)?;
        let mut block = String::new();
        match format {
            Format::Text => {
                block.push_str(&format!(
                    "==================== {which} ====================\n"
                ));
                block.push_str(&payload);
                block.push('\n');
            }
            Format::Json => block.push_str(&payload),
            Format::Csv => {
                if many {
                    block.push_str(&format!("# {which}\n"));
                }
                block.push_str(&payload);
                if many {
                    block.push('\n');
                }
            }
        }
        write_stdout(&block)?;
    }
    Ok(())
}

/// The parsed command line.
#[derive(Debug, PartialEq)]
struct Cli {
    which: String,
    /// `--scale`, when given; each subcommand otherwise picks its default
    /// (0.4 for the figures, 1.0 for `xsocket`, whose repair trigger needs
    /// full-length contended phases to fire early enough to matter).
    scale: Option<f64>,
    threads: Option<usize>,
    only: Option<Vec<String>>,
    format: Format,
    budget: CellBudget,
    pipeline: PipelineConfig,
    topology: TopologySpec,
    /// `--topology-file FILE`: a bespoke `Topology::asymmetric` layout,
    /// loaded and validated before anything is simulated. Campaign-only,
    /// and mutually exclusive with a non-flat `--topology` preset.
    topology_file: Option<String>,
    /// `--cache DIR`: persistent cell-cache directory.
    cache: Option<String>,
    /// `--cache-stats FILE`: where to write cache statistics as JSON.
    cache_stats: Option<String>,
}

/// Why the command line was rejected.
#[derive(Debug, PartialEq)]
enum CliError {
    /// Malformed flags (or an explicit `--help`): print usage, exit 2.
    Usage,
    /// A well-formed but invalid request (e.g. an unknown `--only` name):
    /// print the message, then usage, exit 2.
    Invalid(String),
}

impl Cli {
    /// Parse and validate `args` (the command line without the program name).
    ///
    /// Validation happens *up front*, before anything is simulated: every
    /// name in an `--only` list must exist in the workload registry, so a
    /// typo is an immediate error rather than a silently smaller grid. (The
    /// registry's odd duck is the alternative-input `histogram'`, whose
    /// apostrophe is part of the name.) `--topology` names are validated the
    /// same way against the preset set.
    fn parse(args: &[String]) -> Result<Cli, CliError> {
        let mut cli = Cli {
            which: "all".to_string(),
            scale: None,
            threads: None,
            only: None,
            format: Format::Text,
            budget: CellBudget::default(),
            pipeline: PipelineConfig::default(),
            topology: TopologySpec::Flat,
            topology_file: None,
            cache: None,
            cache_stats: None,
        };
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--scale" => {
                    let Some(v) = args.get(i + 1).and_then(|s| s.parse::<f64>().ok()) else {
                        return Err(CliError::Usage);
                    };
                    cli.scale = Some(v);
                    i += 2;
                }
                "--threads" => {
                    let Some(v) = args.get(i + 1).and_then(|s| s.parse::<usize>().ok()) else {
                        return Err(CliError::Usage);
                    };
                    cli.threads = Some(v);
                    i += 2;
                }
                "--only" => {
                    let Some(v) = args.get(i + 1) else {
                        return Err(CliError::Usage);
                    };
                    cli.only = Some(v.split(',').map(str::to_string).collect());
                    i += 2;
                }
                "--format" => {
                    let Some(v) = args.get(i + 1).and_then(|s| Format::parse(s)) else {
                        return Err(CliError::Usage);
                    };
                    cli.format = v;
                    i += 2;
                }
                "--cell-budget-steps" => {
                    let Some(v) = args.get(i + 1).and_then(|s| s.parse::<u64>().ok()) else {
                        return Err(CliError::Usage);
                    };
                    cli.budget = CellBudget::steps(v);
                    i += 2;
                }
                "--pipeline" => {
                    // Set the flag in place so `--pipeline` composes with
                    // `--shards`/`--shard-routing` in either order.
                    cli.pipeline.enabled = true;
                    i += 1;
                }
                "--shards" => {
                    let Some(v) = args.get(i + 1).and_then(|s| s.parse::<usize>().ok()) else {
                        return Err(CliError::Usage);
                    };
                    if v == 0 {
                        return Err(CliError::Invalid("--shards must be at least 1".to_string()));
                    }
                    cli.pipeline = cli.pipeline.with_shards(v);
                    cli.pipeline.enabled = true;
                    i += 2;
                }
                "--driver-lag" => {
                    let Some(v) = args.get(i + 1).and_then(|s| s.parse::<u64>().ok()) else {
                        return Err(CliError::Usage);
                    };
                    if v > MAX_DRIVER_LAG {
                        return Err(CliError::Invalid(format!(
                            "--driver-lag must be at most {MAX_DRIVER_LAG}"
                        )));
                    }
                    cli.pipeline = cli.pipeline.with_driver_lag(v as usize);
                    cli.pipeline.enabled = true;
                    i += 2;
                }
                "--shard-routing" => {
                    let Some(v) = args.get(i + 1) else {
                        return Err(CliError::Usage);
                    };
                    let routing = ShardRouting::parse(v).ok_or_else(|| {
                        CliError::Invalid(format!(
                            "unknown shard routing '{v}' (expected line or socket)"
                        ))
                    })?;
                    cli.pipeline = cli.pipeline.with_routing(routing);
                    cli.pipeline.enabled = true;
                    i += 2;
                }
                "--topology" => {
                    let Some(v) = args.get(i + 1) else {
                        return Err(CliError::Usage);
                    };
                    cli.topology = TopologySpec::parse(v).ok_or_else(|| {
                        CliError::Invalid(format!(
                            "unknown topology '{v}' (expected flat, 2s, 4s, 8s or 32s)"
                        ))
                    })?;
                    i += 2;
                }
                "--topology-file" => {
                    let Some(v) = args.get(i + 1) else {
                        return Err(CliError::Usage);
                    };
                    cli.topology_file = Some(v.clone());
                    i += 2;
                }
                "--cache" => {
                    let Some(v) = args.get(i + 1) else {
                        return Err(CliError::Usage);
                    };
                    cli.cache = Some(v.clone());
                    i += 2;
                }
                "--cache-stats" => {
                    let Some(v) = args.get(i + 1) else {
                        return Err(CliError::Usage);
                    };
                    cli.cache_stats = Some(v.clone());
                    i += 2;
                }
                "--help" | "-h" => return Err(CliError::Usage),
                name => {
                    cli.which = name.to_string();
                    i += 1;
                }
            }
        }

        if cli.cache_stats.is_some() && cli.cache.is_none() {
            return Err(CliError::Invalid(
                "--cache-stats requires --cache".to_string(),
            ));
        }
        if cli.topology_file.is_some() {
            if cli.which != "campaign" {
                return Err(CliError::Invalid(
                    "--topology-file only applies to the campaign subcommand".to_string(),
                ));
            }
            if cli.topology != TopologySpec::Flat {
                return Err(CliError::Invalid(
                    "--topology-file replaces the topology axis; drop --topology".to_string(),
                ));
            }
        }
        if let Some(names) = &cli.only {
            if cli.which != "campaign" {
                return Err(CliError::Invalid(
                    "--only only applies to the campaign subcommand".to_string(),
                ));
            }
            let names: Vec<&str> = names.iter().map(String::as_str).collect();
            validate_workload_names(&names, &registry())
                .map_err(|e| CliError::Invalid(e.to_string()))?;
        }
        if cli.which != "campaign"
            && cli.which != "all"
            && !FIGURES.contains(&cli.which.as_str())
            && !EXTRAS.contains(&cli.which.as_str())
        {
            return Err(CliError::Usage);
        }
        Ok(cli)
    }
}

/// After a cached run: report statistics to stderr (never stdout — the
/// aggregated output must stay byte-identical, cold or warm), optionally
/// write them as JSON to the `--cache-stats` file, and surface any cache
/// write failure as a clean error.
fn finish_cache(cache: &Option<Arc<CellCache>>, stats_file: &Option<String>) -> Result<(), String> {
    let Some(cache) = cache else {
        return Ok(());
    };
    let stats = cache.stats();
    eprintln!("{}", stats.render());
    if let Some(path) = stats_file {
        std::fs::write(path, format!("{}\n", stats.to_json().render()))
            .map_err(|e| format!("failed to write cache stats to {path}: {e}"))?;
    }
    if let Some(message) = cache.write_error() {
        return Err(format!("cell cache write failed: {message}"));
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    let cli = match Cli::parse(&args) {
        Ok(cli) => cli,
        Err(CliError::Usage) => return usage(),
        Err(CliError::Invalid(msg)) => {
            eprintln!("{msg}");
            return usage();
        }
    };
    let cache = match &cli.cache {
        Some(dir) => match CellCache::open(dir) {
            Ok(cache) => Some(Arc::new(cache)),
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::from(2);
            }
        },
        None => None,
    };
    let scale = ExperimentScale {
        workload_scale: cli.scale.unwrap_or(if cli.which == "xsocket" {
            1.0
        } else {
            ExperimentScale::default().workload_scale
        }),
        ..ExperimentScale::default()
    };

    // Load and validate a bespoke layout up front: a malformed file is a
    // usage-class error (exit 2), caught before anything is simulated.
    let custom = match &cli.topology_file {
        Some(path) => match CustomTopology::load(path) {
            Ok(custom) => Some(Arc::new(custom)),
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::from(2);
            }
        },
        None => None,
    };

    if cli.which == "campaign" {
        return match run_campaign(
            &scale,
            cli.threads,
            &cli.only,
            cli.budget,
            cli.pipeline,
            cli.topology,
            custom,
            cli.format,
            &cache,
        )
        .and_then(|()| finish_cache(&cache, &cli.cache_stats))
        {
            Ok(()) => ExitCode::SUCCESS,
            Err(msg) => {
                eprintln!("{msg}");
                ExitCode::from(2)
            }
        };
    }

    let selected: Vec<&str> = if cli.which == "all" {
        FIGURES.to_vec()
    } else {
        vec![cli.which.as_str()]
    };
    match run_figures(
        &selected,
        &scale,
        cli.threads,
        cli.budget,
        cli.pipeline,
        cli.topology,
        cli.format,
        &cache,
    )
    .and_then(|()| finish_cache(&cache, &cli.cache_stats))
    {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn defaults_parse_to_all_figures_inline() {
        let cli = Cli::parse(&[]).unwrap();
        assert_eq!(cli.which, "all");
        assert_eq!(cli.format, Format::Text);
        assert!(!cli.pipeline.enabled);
        assert!(cli.budget.is_unlimited());
        assert_eq!(cli.only, None);
        assert_eq!(cli.topology, TopologySpec::Flat);
    }

    #[test]
    fn topology_names_are_validated_up_front() {
        // Every preset parses...
        for (name, spec) in [
            ("flat", TopologySpec::Flat),
            ("2s", TopologySpec::DualSocket),
            ("4s", TopologySpec::QuadSocket),
            ("8s", TopologySpec::OctoSocket),
            ("32s", TopologySpec::ThirtyTwoSocket),
        ] {
            let cli = Cli::parse(&args(&["campaign", "--topology", name])).unwrap();
            assert_eq!(cli.topology, spec);
        }
        // ...an unknown name is rejected before anything simulates, with the
        // valid set in the message...
        let err = Cli::parse(&args(&["campaign", "--topology", "16s"])).unwrap_err();
        match err {
            CliError::Invalid(msg) => {
                assert!(msg.contains("unknown topology '16s'"), "{msg}");
                assert!(msg.contains("flat, 2s, 4s, 8s or 32s"), "{msg}");
            }
            other => panic!("expected Invalid, got {other:?}"),
        }
        // ...and a dangling flag is a usage error.
        assert_eq!(
            Cli::parse(&args(&["--topology"])).unwrap_err(),
            CliError::Usage
        );
    }

    #[test]
    fn xsocket_is_a_valid_subcommand_but_not_part_of_all() {
        let cli = Cli::parse(&args(&["xsocket", "--topology", "2s"])).unwrap();
        assert_eq!(cli.which, "xsocket");
        assert_eq!(cli.scale, None, "scale default resolves per subcommand");
        assert!(!FIGURES.contains(&"xsocket"), "xsocket must not join `all`");
        assert!(EXTRAS.contains(&"xsocket"));
        let cli = Cli::parse(&args(&["xsocket", "--scale", "0.5"])).unwrap();
        assert_eq!(cli.scale, Some(0.5));
    }

    #[test]
    fn pipeline_flag_enables_the_double_buffered_deployment() {
        let cli = Cli::parse(&args(&["campaign", "--pipeline", "--threads", "2"])).unwrap();
        assert!(cli.pipeline.enabled);
        assert_eq!(cli.pipeline, PipelineConfig::pipelined());
        assert_eq!(cli.threads, Some(2));
    }

    #[test]
    fn shards_flag_implies_the_pipelined_deployment() {
        // `--shards` alone pipelines with the requested worker count...
        let cli = Cli::parse(&args(&["campaign", "--shards", "4"])).unwrap();
        assert_eq!(cli.pipeline, PipelineConfig::pipelined().with_shards(4));
        // ...even for 1, so CI can diff two pipelined runs that differ only
        // in shard count.
        let cli = Cli::parse(&args(&["campaign", "--shards", "1"])).unwrap();
        assert_eq!(cli.pipeline, PipelineConfig::pipelined());
        // Flag order must not matter.
        let ab = Cli::parse(&args(&["campaign", "--pipeline", "--shards", "8"])).unwrap();
        let ba = Cli::parse(&args(&["campaign", "--shards", "8", "--pipeline"])).unwrap();
        assert_eq!(ab.pipeline, ba.pipeline);
        assert_eq!(ab.pipeline, PipelineConfig::pipelined().with_shards(8));
        // Zero shards and malformed counts are rejected up front.
        assert_eq!(
            Cli::parse(&args(&["campaign", "--shards", "0"])).unwrap_err(),
            CliError::Invalid("--shards must be at least 1".to_string())
        );
        assert_eq!(
            Cli::parse(&args(&["--shards"])).unwrap_err(),
            CliError::Usage
        );
        assert_eq!(
            Cli::parse(&args(&["--shards", "many"])).unwrap_err(),
            CliError::Usage
        );
    }

    #[test]
    fn driver_lag_flag_implies_the_pipelined_deployment() {
        // A lag of 0 is the inline-identical pipeline default...
        let cli = Cli::parse(&args(&["campaign", "--driver-lag", "0"])).unwrap();
        assert_eq!(cli.pipeline, PipelineConfig::pipelined());
        // ...and lag >= 1 defers the charge-back by that many boundaries.
        let cli = Cli::parse(&args(&["campaign", "--driver-lag", "2"])).unwrap();
        assert_eq!(cli.pipeline, PipelineConfig::pipelined().with_driver_lag(2));
        assert!(cli.pipeline.enabled, "--driver-lag implies --pipeline");
        // Flag order must not matter, and it composes with --shards.
        let ab = Cli::parse(&args(&["campaign", "--driver-lag", "1", "--shards", "4"])).unwrap();
        let ba = Cli::parse(&args(&["campaign", "--shards", "4", "--driver-lag", "1"])).unwrap();
        assert_eq!(ab.pipeline, ba.pipeline);
        assert_eq!(
            ab.pipeline,
            PipelineConfig::pipelined()
                .with_shards(4)
                .with_driver_lag(1)
        );
        // Out-of-range and malformed lags are rejected up front.
        let over = (MAX_DRIVER_LAG + 1).to_string();
        assert_eq!(
            Cli::parse(&args(&["campaign", "--driver-lag", &over])).unwrap_err(),
            CliError::Invalid(format!("--driver-lag must be at most {MAX_DRIVER_LAG}"))
        );
        assert_eq!(
            Cli::parse(&args(&["--driver-lag"])).unwrap_err(),
            CliError::Usage
        );
        assert_eq!(
            Cli::parse(&args(&["--driver-lag", "soon"])).unwrap_err(),
            CliError::Usage
        );
    }

    #[test]
    fn topology_file_is_campaign_only_and_replaces_the_preset_axis() {
        // The flag is stored for main() to load after parsing...
        let cli = Cli::parse(&args(&["campaign", "--topology-file", "layout.json"])).unwrap();
        assert_eq!(cli.topology_file, Some("layout.json".to_string()));
        assert_eq!(cli.topology, TopologySpec::Flat);
        // ...an explicit flat preset is redundant but harmless...
        Cli::parse(&args(&[
            "campaign",
            "--topology",
            "flat",
            "--topology-file",
            "layout.json",
        ]))
        .unwrap();
        // ...while a non-flat preset would fight the override...
        assert_eq!(
            Cli::parse(&args(&[
                "campaign",
                "--topology",
                "2s",
                "--topology-file",
                "layout.json",
            ]))
            .unwrap_err(),
            CliError::Invalid(
                "--topology-file replaces the topology axis; drop --topology".to_string()
            )
        );
        // ...figures and xsocket sweep presets, so the override is
        // campaign-only...
        assert_eq!(
            Cli::parse(&args(&["xsocket", "--topology-file", "layout.json"])).unwrap_err(),
            CliError::Invalid(
                "--topology-file only applies to the campaign subcommand".to_string()
            )
        );
        // ...and a dangling flag is a usage error.
        assert_eq!(
            Cli::parse(&args(&["--topology-file"])).unwrap_err(),
            CliError::Usage
        );
    }

    #[test]
    fn shard_routing_flag_parses_and_validates() {
        let cli = Cli::parse(&args(&[
            "campaign",
            "--shards",
            "2",
            "--shard-routing",
            "socket",
        ]))
        .unwrap();
        assert_eq!(
            cli.pipeline,
            PipelineConfig::pipelined()
                .with_shards(2)
                .with_routing(ShardRouting::Socket)
        );
        let cli = Cli::parse(&args(&["campaign", "--shard-routing", "line"])).unwrap();
        assert_eq!(cli.pipeline.routing, ShardRouting::LineHash);
        assert!(cli.pipeline.enabled, "--shard-routing implies --pipeline");
        let err = Cli::parse(&args(&["campaign", "--shard-routing", "pc"])).unwrap_err();
        match err {
            CliError::Invalid(msg) => {
                assert!(msg.contains("unknown shard routing 'pc'"), "{msg}");
                assert!(msg.contains("line or socket"), "{msg}");
            }
            other => panic!("expected Invalid, got {other:?}"),
        }
        assert_eq!(
            Cli::parse(&args(&["--shard-routing"])).unwrap_err(),
            CliError::Usage
        );
    }

    #[test]
    fn only_names_are_validated_before_anything_runs() {
        // The valid list parses...
        let cli = Cli::parse(&args(&["campaign", "--only", "histogram',swaptions"])).unwrap();
        assert_eq!(
            cli.only,
            Some(vec!["histogram'".to_string(), "swaptions".to_string()])
        );
        // ...a typo'd name is rejected up front, before anything simulates,
        // with a hint about the apostrophe-carrying `histogram'`...
        let err = Cli::parse(&args(&["campaign", "--only", "histogramm,swaptions"])).unwrap_err();
        match err {
            CliError::Invalid(msg) => {
                assert!(msg.contains("unknown workload 'histogramm'"), "{msg}");
                assert!(msg.contains("histogram'"), "{msg}");
            }
            other => panic!("expected Invalid, got {other:?}"),
        }
        // ...as is an empty entry from a stray comma.
        assert!(matches!(
            Cli::parse(&args(&["campaign", "--only", "swaptions,"])).unwrap_err(),
            CliError::Invalid(_)
        ));
    }

    #[test]
    fn only_outside_campaign_is_rejected() {
        assert_eq!(
            Cli::parse(&args(&["fig10", "--only", "swaptions"])).unwrap_err(),
            CliError::Invalid("--only only applies to the campaign subcommand".to_string())
        );
    }

    #[test]
    fn cache_flags_parse_and_validate() {
        let cli = Cli::parse(&args(&[
            "all",
            "--cache",
            "cells",
            "--cache-stats",
            "stats.json",
        ]))
        .unwrap();
        assert_eq!(cli.cache, Some("cells".to_string()));
        assert_eq!(cli.cache_stats, Some("stats.json".to_string()));
        // Stats without a cache make no sense and are rejected up front...
        assert_eq!(
            Cli::parse(&args(&["all", "--cache-stats", "stats.json"])).unwrap_err(),
            CliError::Invalid("--cache-stats requires --cache".to_string())
        );
        // ...and dangling flags are usage errors.
        assert_eq!(
            Cli::parse(&args(&["--cache"])).unwrap_err(),
            CliError::Usage
        );
        assert_eq!(
            Cli::parse(&args(&["--cache-stats"])).unwrap_err(),
            CliError::Usage
        );
    }

    #[test]
    fn unknown_subcommands_and_malformed_flags_are_usage_errors() {
        assert_eq!(Cli::parse(&args(&["fig99"])).unwrap_err(), CliError::Usage);
        assert_eq!(
            Cli::parse(&args(&["--scale", "fast"])).unwrap_err(),
            CliError::Usage
        );
        assert_eq!(Cli::parse(&args(&["--help"])).unwrap_err(), CliError::Usage);
    }
}
