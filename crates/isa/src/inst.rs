//! Instructions, registers, operands and addressing modes.
//!
//! The instruction set is deliberately small: loads/stores of 1–8 bytes,
//! register ALU operations, compares, a handful of atomic read-modify-write
//! operations (which act as full fences, as x86 `lock`-prefixed instructions
//! do), explicit fences, and `pause` for spin loops. Control flow lives in
//! block terminators (see [`Terminator`]).

use std::fmt;

use crate::program::BlockId;

/// A general-purpose register. The machine provides [`NUM_REGS`] of them.
///
/// Register `r0`..`r31` hold 64-bit values. Workload builders conventionally
/// use low registers for thread arguments (the simulator initialises them at
/// spawn time).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Reg(pub u8);

/// Number of architectural registers.
pub const NUM_REGS: usize = 32;

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Either a register or a 64-bit immediate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operand {
    /// Use the current value of a register.
    Reg(Reg),
    /// A constant.
    Imm(u64),
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::Imm(v) => write!(f, "{v:#x}"),
        }
    }
}

impl From<Reg> for Operand {
    fn from(r: Reg) -> Self {
        Operand::Reg(r)
    }
}

impl From<u64> for Operand {
    fn from(v: u64) -> Self {
        Operand::Imm(v)
    }
}

/// A memory addressing expression: `base + index * scale + offset`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemAddr {
    /// Base register.
    pub base: Reg,
    /// Optional scaled index register.
    pub index: Option<(Reg, u8)>,
    /// Signed displacement.
    pub offset: i64,
}

impl MemAddr {
    /// Address formed from a base register plus a constant offset.
    pub fn base_offset(base: Reg, offset: i64) -> Self {
        MemAddr {
            base,
            index: None,
            offset,
        }
    }

    /// Address formed from a base register, an index register scaled by
    /// `scale`, and a constant offset.
    pub fn indexed(base: Reg, index: Reg, scale: u8, offset: i64) -> Self {
        MemAddr {
            base,
            index: Some((index, scale)),
            offset,
        }
    }

    /// Registers read when evaluating this address.
    pub fn regs(&self) -> Vec<Reg> {
        let mut v = vec![self.base];
        if let Some((r, _)) = self.index {
            v.push(r);
        }
        v
    }
}

impl fmt::Display for MemAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}", self.base)?;
        if let Some((r, s)) = self.index {
            write!(f, " + {r}*{s}")?;
        }
        if self.offset != 0 {
            write!(f, " + {:#x}", self.offset)?;
        }
        write!(f, "]")
    }
}

/// Arithmetic / logical operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    And,
    Or,
    Xor,
    Shl,
    Shr,
}

impl AluOp {
    /// Apply the operation to two 64-bit values. Division by zero yields 0,
    /// mirroring a trap-free simulator rather than faulting.
    pub fn apply(self, lhs: u64, rhs: u64) -> u64 {
        match self {
            AluOp::Add => lhs.wrapping_add(rhs),
            AluOp::Sub => lhs.wrapping_sub(rhs),
            AluOp::Mul => lhs.wrapping_mul(rhs),
            AluOp::Div => lhs.checked_div(rhs).unwrap_or(0),
            AluOp::Rem => lhs.checked_rem(rhs).unwrap_or(0),
            AluOp::And => lhs & rhs,
            AluOp::Or => lhs | rhs,
            AluOp::Xor => lhs ^ rhs,
            AluOp::Shl => lhs.wrapping_shl(rhs as u32),
            AluOp::Shr => lhs.wrapping_shr(rhs as u32),
        }
    }
}

/// Comparison predicates (unsigned).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl CmpOp {
    /// Evaluate the predicate, returning 1 for true and 0 for false.
    pub fn apply(self, lhs: u64, rhs: u64) -> u64 {
        let b = match self {
            CmpOp::Eq => lhs == rhs,
            CmpOp::Ne => lhs != rhs,
            CmpOp::Lt => lhs < rhs,
            CmpOp::Le => lhs <= rhs,
            CmpOp::Gt => lhs > rhs,
            CmpOp::Ge => lhs >= rhs,
        };
        u64::from(b)
    }
}

/// Atomic read-modify-write flavours. All of them order like x86 `lock`
/// prefixed instructions: a full fence before and after.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RmwOp {
    /// Fetch-and-add: `dst = old; mem = old + operand`.
    FetchAdd,
    /// Exchange: `dst = old; mem = operand`.
    Exchange,
    /// Compare-and-swap: `dst = old; if old == expected { mem = operand }`.
    CompareExchange,
}

/// A non-terminator instruction.
///
/// Every field is plain old data, so instructions are `Copy`: the simulator's
/// fetch/execute loop copies them out of the pre-decoded program instead of
/// borrowing into it (which would conflict with the `&mut` machine state the
/// executing instruction mutates).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Inst {
    /// `dst <- zero-extended load of `size` bytes from `addr``.
    Load { dst: Reg, addr: MemAddr, size: u8 },
    /// Store the low `size` bytes of `src` to `addr`.
    Store {
        src: Operand,
        addr: MemAddr,
        size: u8,
    },
    /// Register/immediate move.
    Mov { dst: Reg, src: Operand },
    /// `dst <- op(lhs, rhs)`.
    Alu {
        op: AluOp,
        dst: Reg,
        lhs: Reg,
        rhs: Operand,
    },
    /// `dst <- cmp(lhs, rhs) ? 1 : 0`.
    Cmp {
        op: CmpOp,
        dst: Reg,
        lhs: Reg,
        rhs: Operand,
    },
    /// Atomic read-modify-write on `addr`; `dst` receives the old value.
    /// `expected` is only used by [`RmwOp::CompareExchange`].
    AtomicRmw {
        op: RmwOp,
        dst: Reg,
        addr: MemAddr,
        operand: Operand,
        expected: Option<Operand>,
        size: u8,
    },
    /// Non-atomic memory-destination read-modify-write, like x86
    /// `add [mem], r`: loads `size` bytes, applies `op` with `operand`, and
    /// stores the result back. Not a fence. Compilers emit these for counter
    /// increments, which is why such PCs appear in both the load and store
    /// sets the detector builds.
    MemRmw {
        op: AluOp,
        addr: MemAddr,
        operand: Operand,
        size: u8,
    },
    /// Full memory fence (drains the store buffer).
    Fence,
    /// Spin-loop hint; costs a cycle and does nothing else.
    Pause,
    /// No operation. Used as compute filler in characterization tests.
    Nop,
}

impl Inst {
    /// True if the instruction reads memory.
    pub fn is_load(&self) -> bool {
        matches!(
            self,
            Inst::Load { .. } | Inst::AtomicRmw { .. } | Inst::MemRmw { .. }
        )
    }

    /// True if the instruction writes memory.
    pub fn is_store(&self) -> bool {
        matches!(
            self,
            Inst::Store { .. } | Inst::AtomicRmw { .. } | Inst::MemRmw { .. }
        )
    }

    /// The memory access size in bytes, if this is a memory instruction.
    pub fn access_size(&self) -> Option<u8> {
        match self {
            Inst::Load { size, .. }
            | Inst::Store { size, .. }
            | Inst::AtomicRmw { size, .. }
            | Inst::MemRmw { size, .. } => Some(*size),
            _ => None,
        }
    }

    /// The memory address expression, if this is a memory instruction.
    pub fn mem_addr(&self) -> Option<&MemAddr> {
        match self {
            Inst::Load { addr, .. }
            | Inst::Store { addr, .. }
            | Inst::AtomicRmw { addr, .. }
            | Inst::MemRmw { addr, .. } => Some(addr),
            _ => None,
        }
    }

    /// True if the instruction orders memory like a fence (explicit fences and
    /// atomic read-modify-writes).
    pub fn is_fence_like(&self) -> bool {
        matches!(self, Inst::Fence | Inst::AtomicRmw { .. })
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Inst::Load { dst, addr, size } => write!(f, "ld{size} {dst}, {addr}"),
            Inst::Store { src, addr, size } => write!(f, "st{size} {addr}, {src}"),
            Inst::Mov { dst, src } => write!(f, "mov {dst}, {src}"),
            Inst::Alu { op, dst, lhs, rhs } => write!(f, "{op:?} {dst}, {lhs}, {rhs}").map(|_| ()),
            Inst::Cmp { op, dst, lhs, rhs } => write!(f, "cmp.{op:?} {dst}, {lhs}, {rhs}"),
            Inst::AtomicRmw {
                op,
                dst,
                addr,
                operand,
                ..
            } => {
                write!(f, "atomic.{op:?} {dst}, {addr}, {operand}")
            }
            Inst::MemRmw {
                op,
                addr,
                operand,
                size,
            } => {
                write!(f, "{op:?}{size} {addr}, {operand}")
            }
            Inst::Fence => write!(f, "fence"),
            Inst::Pause => write!(f, "pause"),
            Inst::Nop => write!(f, "nop"),
        }
    }
}

/// A basic-block terminator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Terminator {
    /// Unconditional jump.
    Jump(BlockId),
    /// Conditional branch on `cond != 0`.
    Branch {
        cond: Reg,
        if_true: BlockId,
        if_false: BlockId,
    },
    /// End of this thread's execution.
    Halt,
}

impl Terminator {
    /// Successor blocks of this terminator.
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            Terminator::Jump(t) => vec![*t],
            Terminator::Branch {
                if_true, if_false, ..
            } => vec![*if_true, *if_false],
            Terminator::Halt => Vec::new(),
        }
    }
}

impl fmt::Display for Terminator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Terminator::Jump(t) => write!(f, "jmp {t:?}"),
            Terminator::Branch {
                cond,
                if_true,
                if_false,
            } => {
                write!(f, "br {cond}, {if_true:?}, {if_false:?}")
            }
            Terminator::Halt => write!(f, "halt"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alu_ops_apply() {
        assert_eq!(AluOp::Add.apply(2, 3), 5);
        assert_eq!(AluOp::Sub.apply(2, 3), u64::MAX);
        assert_eq!(AluOp::Mul.apply(4, 4), 16);
        assert_eq!(AluOp::Div.apply(9, 2), 4);
        assert_eq!(AluOp::Div.apply(9, 0), 0);
        assert_eq!(AluOp::Rem.apply(9, 4), 1);
        assert_eq!(AluOp::Rem.apply(9, 0), 0);
        assert_eq!(AluOp::And.apply(0b1100, 0b1010), 0b1000);
        assert_eq!(AluOp::Or.apply(0b1100, 0b1010), 0b1110);
        assert_eq!(AluOp::Xor.apply(0b1100, 0b1010), 0b0110);
        assert_eq!(AluOp::Shl.apply(1, 4), 16);
        assert_eq!(AluOp::Shr.apply(16, 4), 1);
    }

    #[test]
    fn cmp_ops_apply() {
        assert_eq!(CmpOp::Eq.apply(1, 1), 1);
        assert_eq!(CmpOp::Ne.apply(1, 1), 0);
        assert_eq!(CmpOp::Lt.apply(1, 2), 1);
        assert_eq!(CmpOp::Le.apply(2, 2), 1);
        assert_eq!(CmpOp::Gt.apply(3, 2), 1);
        assert_eq!(CmpOp::Ge.apply(1, 2), 0);
    }

    #[test]
    fn inst_classification() {
        let ld = Inst::Load {
            dst: Reg(1),
            addr: MemAddr::base_offset(Reg(0), 0),
            size: 8,
        };
        let st = Inst::Store {
            src: Operand::Imm(1),
            addr: MemAddr::base_offset(Reg(0), 8),
            size: 4,
        };
        let rmw = Inst::AtomicRmw {
            op: RmwOp::FetchAdd,
            dst: Reg(2),
            addr: MemAddr::base_offset(Reg(0), 0),
            operand: Operand::Imm(1),
            expected: None,
            size: 8,
        };
        assert!(ld.is_load() && !ld.is_store());
        assert!(st.is_store() && !st.is_load());
        assert!(rmw.is_load() && rmw.is_store() && rmw.is_fence_like());
        let mem_rmw = Inst::MemRmw {
            op: AluOp::Add,
            addr: MemAddr::base_offset(Reg(0), 0),
            operand: Operand::Imm(1),
            size: 4,
        };
        assert!(mem_rmw.is_load() && mem_rmw.is_store());
        assert!(!mem_rmw.is_fence_like());
        assert_eq!(mem_rmw.access_size(), Some(4));
        assert!(mem_rmw.mem_addr().is_some());
        assert!(!format!("{mem_rmw}").is_empty());
        assert_eq!(ld.access_size(), Some(8));
        assert_eq!(st.access_size(), Some(4));
        assert_eq!(Inst::Nop.access_size(), None);
        assert!(Inst::Fence.is_fence_like());
        assert!(!Inst::Pause.is_fence_like());
    }

    #[test]
    fn mem_addr_regs() {
        let a = MemAddr::base_offset(Reg(3), 16);
        assert_eq!(a.regs(), vec![Reg(3)]);
        let b = MemAddr::indexed(Reg(3), Reg(4), 8, 0);
        assert_eq!(b.regs(), vec![Reg(3), Reg(4)]);
    }

    #[test]
    fn terminator_successors() {
        let j = Terminator::Jump(BlockId(2));
        assert_eq!(j.successors(), vec![BlockId(2)]);
        let b = Terminator::Branch {
            cond: Reg(0),
            if_true: BlockId(1),
            if_false: BlockId(2),
        };
        assert_eq!(b.successors(), vec![BlockId(1), BlockId(2)]);
        assert!(Terminator::Halt.successors().is_empty());
    }

    #[test]
    fn display_is_nonempty() {
        let ld = Inst::Load {
            dst: Reg(1),
            addr: MemAddr::indexed(Reg(0), Reg(2), 8, 4),
            size: 8,
        };
        assert!(!format!("{ld}").is_empty());
        assert!(!format!("{}", Terminator::Halt).is_empty());
        assert!(!format!("{}", Operand::Imm(7)).is_empty());
        assert!(!format!("{}", Reg(5)).is_empty());
    }
}
