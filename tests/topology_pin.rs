//! Regression pin: the default (single-socket) topology's per-access charges
//! equal the pre-topology flat cost model **exactly**.
//!
//! The topology refactor routed every memory access through
//! `Topology::resolve` + `Topology::cost` instead of pricing the directory's
//! `AccessClass` straight from the `LatencyModel`. On the default topology
//! that indirection must be invisible: these tests pin end-to-end cycle
//! counts captured from the pre-refactor tree (commit `3aaf9e9`, `campaign
//! --threads 1 --scale 0.08`), so any drift in the flat cost path — a
//! misrouted class, an off-by-one in a latency table — fails loudly rather
//! than silently skewing every figure.

use laser_bench::{LaserTool, NativeTool, Tool, ToolSpec, TopologySpec};
use laser_core::LaserConfig;
use laser_machine::{LatencyModel, ResolvedClass, Topology};
use laser_workloads::{find, BuildOptions};

fn opts() -> BuildOptions {
    BuildOptions::scaled(0.08)
}

/// Cycle counts recorded from the pre-topology tree at scale 0.08.
const PINNED_NATIVE: &[(&str, u64)] = &[
    ("histogram'", 21_351),
    ("linear_regression", 42_975),
    ("swaptions", 5_383),
];

#[test]
fn default_topology_native_cycles_match_the_pre_refactor_flat_model() {
    for &(name, cycles) in PINNED_NATIVE {
        let spec = find(name).expect("known workload");
        let run = NativeTool.run(&spec, &opts()).unwrap();
        assert_eq!(
            run.cycles, cycles,
            "{name}: default-topology charges drifted from the flat model"
        );
        assert_eq!(
            run.hitm_remote, 0,
            "{name}: nothing is remote on one socket"
        );
    }
}

#[test]
fn default_topology_laser_cycles_match_the_pre_refactor_flat_model() {
    // The LASER path exercises driver + detector charging on top of the
    // machine's access costs; its end-to-end count pins both.
    let spec = find("histogram'").expect("known workload");
    let run = LaserTool::new(LaserConfig::detection_only())
        .run(&spec, &opts())
        .unwrap();
    assert_eq!(run.cycles, 21_826, "laser-detect charges drifted");
}

#[test]
fn flat_topology_prices_every_class_from_the_base_model() {
    let base = LatencyModel::default();
    let flat = Topology::single_socket();
    assert_eq!(flat.cost(ResolvedClass::L1Hit, &base), base.l1_hit);
    assert_eq!(flat.cost(ResolvedClass::LlcLocal, &base), base.llc_hit);
    assert_eq!(flat.cost(ResolvedClass::HitmLocal, &base), base.hitm);
    assert_eq!(flat.cost(ResolvedClass::DramLocal, &base), base.dram);
}

#[test]
fn explicit_flat_topology_equals_the_default_cell_for_cell() {
    // Running a cell "at" the flat preset must be the same computation as
    // running it with no topology at all — key, options and outcome.
    let spec = find("histogram'").expect("known workload");
    let default_run = NativeTool.run(&spec, &opts()).unwrap();
    let flat_run = NativeTool
        .run_at(&spec, &opts(), TopologySpec::Flat)
        .unwrap();
    assert_eq!(default_run, flat_run);
    assert_eq!(ToolSpec::Native.key_at(TopologySpec::Flat), "native");
    assert_eq!(
        ToolSpec::Native.key_at(TopologySpec::DualSocket),
        "native@2s"
    );
}
