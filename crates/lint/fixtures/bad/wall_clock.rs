//! Bad fixture: host wall-clock reads in library code.
//! Expected findings: `wall-clock` (three).

use std::time::{Instant, SystemTime};

pub fn stamp() -> (Instant, SystemTime) {
    let a = Instant::now();
    let b = SystemTime::now();
    (a, b)
}

pub fn whoami() -> std::thread::Thread {
    std::thread::current()
}
