//! Offline stand-in for the `serde` facade.
//!
//! Re-exports the no-op `Serialize` / `Deserialize` derives so that
//! `use serde::{Deserialize, Serialize};` plus `#[derive(...)]` compiles
//! without network access. The derives are inert markers — no trait impls are
//! generated.
//!
//! The [`json`] module is the one place the shim does real work: a minimal
//! JSON value model (build / render / parse) backing the experiment
//! harness's `--format json` output until the real `serde_json` is available.

pub mod json;

pub use serde_derive::{Deserialize, Serialize};
