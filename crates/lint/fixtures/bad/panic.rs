//! Bad fixture: panicking constructs in library code.
//! Expected findings: `panic` (five).

pub fn take(v: Option<u64>) -> u64 {
    v.unwrap()
}

pub fn need(v: Option<u64>) -> u64 {
    v.expect("value must be present")
}

pub fn boom() {
    panic!("unconditional");
}

pub fn later() {
    todo!()
}

pub fn never() {
    unreachable!()
}
