//! The Phoenix 1.0 workloads (paper Section 7, Table 1).
//!
//! Phoenix contributes the paper's two headline false-sharing cases
//! (`linear_regression` and the alternative-input `histogram'`), the
//! true-sharing-rich `kmeans`, and the mild `reverse_index` / `word_count`
//! cases, plus three contention-free kernels.

use laser_isa::inst::Operand;
use laser_isa::ProgramBuilder;
use laser_machine::{ThreadSpec, WorkloadImage};

use crate::common::{
    self, close_loop, open_loop, private_compute, regs, scaled_iters, INTENSE_DILATION,
    MILD_DILATION,
};
use crate::spec::{BugKind, BuildOptions, KnownBug, SheriffCompat, Suite, WorkloadSpec};

/// All Phoenix workload specifications (including the `histogram'`
/// alternative-input configuration).
pub fn all() -> Vec<WorkloadSpec> {
    vec![
        WorkloadSpec {
            name: "histogram",
            suite: Suite::Phoenix,
            known_bugs: vec![],
            sheriff: SheriffCompat::Works,
            has_fix: false,
            build_fn: |o| histogram(o, false),
        },
        WorkloadSpec {
            name: "histogram'",
            suite: Suite::Phoenix,
            known_bugs: vec![KnownBug::new(
                "histogram.c",
                &[52, 53],
                BugKind::FalseSharing,
                "per-thread bucket counters of different threads packed into one cache line",
            )],
            sheriff: SheriffCompat::Works,
            has_fix: true,
            build_fn: |o| histogram(o, true),
        },
        WorkloadSpec {
            name: "kmeans",
            suite: Suite::Phoenix,
            known_bugs: vec![KnownBug::new(
                "kmeans.c",
                &[60, 70],
                BugKind::FalseSharing,
                "migratory contention on main-thread-allocated sum objects and the global \
                 `modified` flag written redundantly by every thread",
            )],
            sheriff: SheriffCompat::Works,
            has_fix: true,
            build_fn: kmeans,
        },
        WorkloadSpec {
            name: "linear_regression",
            suite: Suite::Phoenix,
            known_bugs: vec![KnownBug::new(
                "linear_regression.c",
                &[45, 46, 47],
                BugKind::FalseSharing,
                "per-thread lreg_args structs straddle cache lines because the allocator does \
                 not 64-byte-align the array (Figure 2)",
            )],
            sheriff: SheriffCompat::Works,
            has_fix: true,
            build_fn: linear_regression,
        },
        WorkloadSpec {
            name: "matrix_multiply",
            suite: Suite::Phoenix,
            known_bugs: vec![],
            sheriff: SheriffCompat::Works,
            has_fix: false,
            build_fn: |o| private_compute("matrix_multiply", "matrix_multiply.c", o, 2200, 6, 16),
        },
        WorkloadSpec {
            name: "pca",
            suite: Suite::Phoenix,
            known_bugs: vec![],
            sheriff: SheriffCompat::Works,
            has_fix: false,
            build_fn: |o| private_compute("pca", "pca.c", o, 2600, 8, 32),
        },
        WorkloadSpec {
            name: "reverse_index",
            suite: Suite::Phoenix,
            known_bugs: vec![KnownBug::new(
                "reverse_index.c",
                &[88],
                BugKind::FalseSharing,
                "the per-thread use_len[] counters share a cache line",
            )],
            sheriff: SheriffCompat::Works,
            has_fix: true,
            build_fn: |o| {
                packed_counter_kernel("reverse_index", "reverse_index.c", 88, o, 1800, 10, 6)
            },
        },
        WorkloadSpec {
            name: "string_match",
            suite: Suite::Phoenix,
            known_bugs: vec![],
            sheriff: SheriffCompat::Works,
            has_fix: false,
            build_fn: |o| private_compute("string_match", "string_match.c", o, 3000, 10, 8),
        },
        WorkloadSpec {
            name: "word_count",
            suite: Suite::Phoenix,
            known_bugs: vec![],
            sheriff: SheriffCompat::Crash,
            has_fix: true,
            build_fn: |o| packed_counter_kernel("word_count", "word_count.c", 71, o, 1500, 10, 10),
        },
    ]
}

/// `linear_regression`: each thread owns a 64-byte `lreg_args` struct, but the
/// array of structs is not cache-line aligned, so every struct straddles two
/// lines and neighbouring threads contend. At -O3 the accumulators live in
/// registers and are *stored* back every iteration, producing the write-write
/// sharing the paper describes (which is also why the HITM records are too
/// imprecise for LASER to name the contention type).
fn linear_regression(opts: &BuildOptions) -> WorkloadImage {
    let iters = scaled_iters(2500, opts);
    let file = "linear_regression.c";
    let mut b = ProgramBuilder::new("linear_regression");
    b.source(file, 40);
    let entry = b.block("entry");
    b.switch_to(entry);
    let (body, exit) = open_loop(&mut b, "points");
    // Read the next point from the thread-private points array (no sharing).
    b.source(file, 43);
    b.load(regs::VAL, regs::DATA2, 0, 8);
    b.add(regs::VAL, regs::VAL, Operand::Reg(regs::IV));
    // Store the five accumulator fields SX, SY, SXX, SYY, SXY (struct offsets
    // 24..64). The struct base (regs::DATA) is not line-aligned, so some of
    // these land in the neighbouring thread's line.
    b.source(file, 45);
    b.store(Operand::Reg(regs::VAL), regs::DATA, 24, 8);
    b.store(Operand::Reg(regs::VAL), regs::DATA, 32, 8);
    b.source(file, 46);
    b.store(Operand::Reg(regs::VAL), regs::DATA, 40, 8);
    b.store(Operand::Reg(regs::VAL), regs::DATA, 48, 8);
    b.source(file, 47);
    b.store(Operand::Reg(regs::VAL), regs::DATA, 56, 8);
    close_loop(&mut b, body, exit, iters);
    b.halt();
    let program = b.finish();

    let mut image = WorkloadImage::new("linear_regression", program);
    image.set_time_dilation(INTENSE_DILATION);
    if opts.layout_perturbation > 0 {
        image.layout_mut().perturb_heap(opts.layout_perturbation);
    }
    // One malloc for the whole args array. The fixed variant aligns it to a
    // cache line (the 17x manual fix); the default layout leaves it offset by
    // the allocator's chunk header, as in Figure 2.
    let struct_size = 64u64;
    let align = if opts.fixed { 64 } else { 1 };
    let args_array = image
        .layout_mut()
        .heap_alloc(struct_size * opts.threads as u64, align)
        .expect("args array"); // lint:allow(panic) — workload images size their heaps to fit; allocation failure is a builder bug
    for t in 0..opts.threads {
        let points = image.layout_mut().heap_alloc(512, 64).expect("points"); // lint:allow(panic) — workload images size their heaps to fit; allocation failure is a builder bug
        image.push_thread(
            ThreadSpec::new(format!("lreg{t}"), "entry")
                .with_reg(regs::DATA, args_array + t as u64 * struct_size)
                .with_reg(regs::DATA2, points)
                .with_reg(regs::TID, t as u64),
        );
    }
    image
}

/// `histogram` / `histogram'`: every thread increments private bucket
/// counters with memory-destination adds. With the default input the
/// per-thread buckets sit on separate cache lines; the alternative input
/// (`histogram'`) packs all threads' hot buckets into one line.
fn histogram(opts: &BuildOptions, alternative_input: bool) -> WorkloadImage {
    let iters = scaled_iters(2800, opts);
    let file = "histogram.c";
    let buckets_per_thread = 4u64;
    let mut b = ProgramBuilder::new("histogram");
    b.source(file, 50);
    let entry = b.block("entry");
    b.switch_to(entry);
    let (body, exit) = open_loop(&mut b, "pixels");
    // bucket = iv % buckets_per_thread; counters[bucket]++
    b.source(file, 52);
    b.alu(
        laser_isa::AluOp::Rem,
        regs::SCRATCH_A,
        regs::IV,
        Operand::Imm(buckets_per_thread),
    );
    b.alu(
        laser_isa::AluOp::Mul,
        regs::SCRATCH_A,
        regs::SCRATCH_A,
        Operand::Imm(8),
    );
    b.add(regs::SCRATCH_A, regs::SCRATCH_A, Operand::Reg(regs::DATA));
    b.source(file, 53);
    b.mem_add(regs::SCRATCH_A, 0, Operand::Imm(1), 8);
    b.source(file, 55);
    b.nops(2);
    close_loop(&mut b, body, exit, iters);
    b.halt();
    let program = b.finish();

    let mut image = WorkloadImage::new(
        if alternative_input {
            "histogram'"
        } else {
            "histogram"
        },
        program,
    );
    image.set_time_dilation(if alternative_input {
        INTENSE_DILATION
    } else {
        common::BENIGN_DILATION
    });
    if opts.layout_perturbation > 0 {
        image.layout_mut().perturb_heap(opts.layout_perturbation);
    }
    let per_thread_bytes = buckets_per_thread * 8;
    if alternative_input && !opts.fixed {
        // All threads' counters in one packed allocation: 32 bytes per
        // thread, two threads per 64-byte line.
        let packed = image
            .layout_mut()
            .heap_alloc(per_thread_bytes * opts.threads as u64, 1)
            .expect("packed counters"); // lint:allow(panic) — workload images size their heaps to fit; allocation failure is a builder bug
        for t in 0..opts.threads {
            image.push_thread(
                ThreadSpec::new(format!("hist{t}"), "entry")
                    .with_reg(regs::DATA, packed + t as u64 * per_thread_bytes)
                    .with_reg(regs::TID, t as u64),
            );
        }
    } else {
        // Default input / fixed variant: each thread's counters on their own
        // cache line.
        for t in 0..opts.threads {
            let buf = image.layout_mut().heap_alloc(64, 64).expect("counters"); // lint:allow(panic) — workload images size their heaps to fit; allocation failure is a builder bug
            image.push_thread(
                ThreadSpec::new(format!("hist{t}"), "entry")
                    .with_reg(regs::DATA, buf)
                    .with_reg(regs::TID, t as u64),
            );
        }
    }
    image
}

/// `kmeans`: worker threads accumulate into per-cluster "sum" objects that the
/// main thread allocated back-to-back on the heap (migratory read-write
/// sharing that also false-shares across neighbouring objects) and redundantly
/// set the global `modified` flag every iteration (true sharing). The manual
/// fix batches the flag update and gives each thread stack-local sums.
fn kmeans(opts: &BuildOptions) -> WorkloadImage {
    let iters = scaled_iters(2200, opts);
    let file = "kmeans.c";
    let clusters = 8u64;
    let mut b = ProgramBuilder::new("kmeans");
    b.source(file, 55);
    let entry = b.block("entry");
    b.switch_to(entry);
    let (body, exit) = open_loop(&mut b, "points");
    // sum_obj = sums[(iv + tid) % clusters]; sum_obj->total += iv
    b.source(file, 60);
    b.add(regs::SCRATCH_A, regs::IV, Operand::Reg(regs::TID));
    b.alu(
        laser_isa::AluOp::Rem,
        regs::SCRATCH_A,
        regs::SCRATCH_A,
        Operand::Imm(clusters),
    );
    b.alu(
        laser_isa::AluOp::Mul,
        regs::SCRATCH_A,
        regs::SCRATCH_A,
        Operand::Imm(32),
    );
    b.add(regs::SCRATCH_A, regs::SCRATCH_A, Operand::Reg(regs::DATA));
    b.mem_add(regs::SCRATCH_A, 0, Operand::Imm(1), 8);
    if opts.fixed {
        // Fixed variant: the `modified` flag is cached in a register and only
        // written once per outer pass (modelled as once every 64 iterations),
        // and the sums above are thread-local stack objects.
        b.source(file, 72);
        b.alu(
            laser_isa::AluOp::Rem,
            regs::SCRATCH_A,
            regs::IV,
            Operand::Imm(64),
        );
        b.cmp_eq(regs::COND, regs::SCRATCH_A, Operand::Imm(0));
        let flag_blk = b.block("flag");
        let join = b.block("flag_join");
        b.branch(regs::COND, flag_blk, join);
        b.switch_to(flag_blk);
        b.store(Operand::Imm(1), regs::SHARED, 0, 8);
        b.jump(join);
        b.switch_to(join);
    } else {
        // Redundant write of the global flag every iteration (true sharing).
        b.source(file, 70);
        b.mem_add(regs::SHARED, 0, Operand::Imm(0), 8);
    }
    b.source(file, 75);
    b.nops(3);
    close_loop(&mut b, body, exit, iters);
    b.halt();
    let program = b.finish();

    let mut image = WorkloadImage::new("kmeans", program);
    image.set_time_dilation(INTENSE_DILATION);
    if opts.layout_perturbation > 0 {
        image.layout_mut().perturb_heap(opts.layout_perturbation);
    }
    let modified_flag = image.layout_mut().global_alloc(8, 8);
    for t in 0..opts.threads {
        // Each worker gets its own run of sum objects; in the buggy variant
        // they are packed 32-byte heap objects (allocated by the main thread),
        // in the fixed variant they are cache-line-aligned "stack" objects.
        let sums = if opts.fixed {
            image
                .layout_mut()
                .heap_alloc(clusters * 64, 64)
                .expect("sums") // lint:allow(panic) — workload images size their heaps to fit; allocation failure is a builder bug
        } else {
            image
                .layout_mut()
                .heap_alloc(clusters * 32, 1)
                .expect("sums") // lint:allow(panic) — workload images size their heaps to fit; allocation failure is a builder bug
        };
        image.push_thread(
            ThreadSpec::new(format!("kmeans{t}"), "entry")
                .with_reg(regs::DATA, sums)
                .with_reg(regs::SHARED, modified_flag)
                .with_reg(regs::TID, t as u64),
        );
    }
    image
}

/// A mild packed-counter kernel used for `reverse_index` and `word_count`:
/// each thread bumps its own slot of a shared, unpadded array every
/// `update_period` iterations. Clearly detectable false sharing, but not
/// intense enough to be worth automatic repair (the paper reports a 4 % /
/// no-op speedup from padding).
fn packed_counter_kernel(
    name: &'static str,
    file: &'static str,
    bug_line: u32,
    opts: &BuildOptions,
    base_iters: u64,
    update_period: u64,
    compute_ops: usize,
) -> WorkloadImage {
    let iters = scaled_iters(base_iters, opts);
    let mut b = ProgramBuilder::new(name);
    b.source(file, 10);
    let entry = b.block("entry");
    b.switch_to(entry);
    let (body, exit) = open_loop(&mut b, "main");
    b.source(file, 20);
    b.load(regs::VAL, regs::DATA2, 0, 8);
    b.addi(regs::VAL, regs::VAL, 1);
    b.store(Operand::Reg(regs::VAL), regs::DATA2, 0, 8);
    b.nops(compute_ops);
    // if (iv % update_period == 0) use_len[tid]++
    b.alu(
        laser_isa::AluOp::Rem,
        regs::SCRATCH_A,
        regs::IV,
        Operand::Imm(update_period.max(1)),
    );
    b.cmp_eq(regs::COND, regs::SCRATCH_A, Operand::Imm(0));
    let bump = b.block("bump");
    let join = b.block("join");
    b.branch(regs::COND, bump, join);
    b.switch_to(bump);
    b.source(file, bug_line);
    b.mem_add(regs::DATA, 0, Operand::Imm(1), 8);
    // The real benchmarks merge into the global index under a lock from time
    // to time; the occasional atomic also gives Sheriff-Detect's twin
    // comparison a synchronization point to sample at.
    b.source(file, bug_line + 30);
    b.atomic_fetch_add(regs::SCRATCH_A, regs::SHARED, 0, Operand::Imm(1), 8);
    b.jump(join);
    b.switch_to(join);
    close_loop(&mut b, body, exit, iters);
    b.halt();
    let program = b.finish();

    let mut image = WorkloadImage::new(name, program);
    image.set_time_dilation(MILD_DILATION);
    if opts.layout_perturbation > 0 {
        image.layout_mut().perturb_heap(opts.layout_perturbation);
    }
    let merge_counter = image.layout_mut().global_alloc(64, 64);
    if opts.fixed {
        // Manual fix: pad each counter to its own cache line.
        for t in 0..opts.threads {
            let slot = image.layout_mut().heap_alloc(64, 64).expect("use_len"); // lint:allow(panic) — workload images size their heaps to fit; allocation failure is a builder bug
            let private = image.layout_mut().heap_alloc(64, 64).expect("private"); // lint:allow(panic) — workload images size their heaps to fit; allocation failure is a builder bug
            image.push_thread(
                ThreadSpec::new(format!("{name}{t}"), "entry")
                    .with_reg(regs::DATA, slot)
                    .with_reg(regs::DATA2, private)
                    .with_reg(regs::SHARED, merge_counter)
                    .with_reg(regs::TID, t as u64),
            );
        }
    } else {
        let use_len = image
            .layout_mut()
            .heap_alloc(8 * opts.threads as u64, 1)
            .expect("use_len array"); // lint:allow(panic) — workload images size their heaps to fit; allocation failure is a builder bug
        for t in 0..opts.threads {
            let private = image.layout_mut().heap_alloc(64, 64).expect("private"); // lint:allow(panic) — workload images size their heaps to fit; allocation failure is a builder bug
            image.push_thread(
                ThreadSpec::new(format!("{name}{t}"), "entry")
                    .with_reg(regs::DATA, use_len + 8 * t as u64)
                    .with_reg(regs::DATA2, private)
                    .with_reg(regs::SHARED, merge_counter)
                    .with_reg(regs::TID, t as u64),
            );
        }
    }
    image
}

#[cfg(test)]
mod tests {
    use super::*;
    use laser_machine::{Machine, MachineConfig};

    fn run(image: &WorkloadImage) -> laser_machine::RunResult {
        Machine::new(MachineConfig::default(), image)
            .run_to_completion()
            .unwrap()
    }

    fn small() -> BuildOptions {
        BuildOptions::scaled(0.15)
    }

    #[test]
    fn linear_regression_false_shares_and_fix_removes_it() {
        let buggy = run(&linear_regression(&small()));
        assert!(
            buggy.stats.hitm_events > 500,
            "hitms {}",
            buggy.stats.hitm_events
        );
        let fixed = run(&linear_regression(&BuildOptions {
            fixed: true,
            ..small()
        }));
        assert!(fixed.stats.hitm_events < buggy.stats.hitm_events / 20);
        assert!(
            fixed.cycles < buggy.cycles / 2,
            "fix should give a large speedup"
        );
    }

    #[test]
    fn histogram_default_input_is_clean_but_alternative_contends() {
        let default_input = run(&histogram(&small(), false));
        assert_eq!(default_input.stats.hitm_events, 0);
        let alt = run(&histogram(&small(), true));
        assert!(alt.stats.hitm_events > 300);
        let alt_fixed = run(&histogram(
            &BuildOptions {
                fixed: true,
                ..small()
            },
            true,
        ));
        assert!(alt_fixed.stats.hitm_events < alt.stats.hitm_events / 20);
    }

    #[test]
    fn kmeans_has_true_sharing_and_fix_reduces_it() {
        let buggy = run(&kmeans(&small()));
        assert!(buggy.stats.hitm_events > 500);
        let fixed = run(&kmeans(&BuildOptions {
            fixed: true,
            ..small()
        }));
        assert!(fixed.stats.hitm_events < buggy.stats.hitm_events / 2);
        assert!(fixed.cycles < buggy.cycles);
    }

    #[test]
    fn reverse_index_contention_is_mild() {
        let o = small();
        let buggy = run(&packed_counter_kernel(
            "reverse_index",
            "reverse_index.c",
            88,
            &o,
            1800,
            6,
            6,
        ));
        let fixed = run(&packed_counter_kernel(
            "reverse_index",
            "reverse_index.c",
            88,
            &BuildOptions { fixed: true, ..o },
            1800,
            6,
            6,
        ));
        assert!(buggy.stats.hitm_events > 50);
        // Padding removes the use_len false sharing; the (legitimate) merge
        // counter contention present in both variants remains.
        assert!(fixed.stats.hitm_events * 4 < buggy.stats.hitm_events * 3);
        // Mild: the fix helps, but by much less than linear_regression's.
        let speedup = buggy.cycles as f64 / fixed.cycles as f64;
        assert!(speedup > 0.95 && speedup < 2.0, "speedup {speedup}");
    }

    #[test]
    fn phoenix_registry_entries_build() {
        for spec in all() {
            let image = spec.build(&BuildOptions::scaled(0.05));
            assert_eq!(image.threads().len(), 4, "{}", spec.name);
        }
    }
}
