//! The cache-line model that classifies true vs false sharing (Figure 5).
//!
//! Each cache line that appears in a HITM record is tracked with the type
//! (read/write) and byte bitmap of its *previous* access. When a new access
//! arrives, overlap between the two bitmaps with at least one write means the
//! threads touched the same data — true sharing; disjoint bitmaps with at
//! least one write mean they touched different data in the same line — false
//! sharing.

use laser_isa::program::Pc;
use laser_machine::fasthash::FastHashMap;
use laser_machine::{line_of, line_offset, Addr, CACHE_LINE_SIZE};

/// Classification of one observed sharing event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SharingClass {
    /// Overlapping bytes, at least one write.
    TrueSharing,
    /// Disjoint bytes of the same line, at least one write.
    FalseSharing,
}

#[derive(Debug, Clone, Copy)]
struct LastAccess {
    /// Whether the previous access was a write. Not needed by the footprint
    /// classification itself, but kept for report debugging and future
    /// heuristics (e.g. distinguishing write-write from read-write sharing).
    #[allow(dead_code)]
    was_write: bool,
    bitmap: u64,
}

/// Per-line state: the type and byte bitmap of the previous access, stored in
/// a hash table so only the handful of contended lines consume space.
#[derive(Debug, Default)]
pub struct CacheLineModel {
    // Hot per-record path: deterministic fast hashing, never iterated.
    lines: FastHashMap<Addr, LastAccess>,
}

impl CacheLineModel {
    /// An empty model.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of cache lines currently tracked.
    pub fn tracked_lines(&self) -> usize {
        self.lines.len()
    }

    fn bitmap_for(addr: Addr, size: u8) -> u64 {
        let start = line_offset(addr);
        let mut bm = 0u64;
        for i in 0..size as u64 {
            let off = start + i;
            if off >= CACHE_LINE_SIZE {
                break;
            }
            bm |= 1u64 << off;
        }
        bm
    }

    /// Record an access and, if the line has a previous access, classify the
    /// pair: overlapping footprints mean true sharing, disjoint footprints in
    /// the same line mean false sharing. Returns `None` for the first access
    /// to a line.
    ///
    /// A HITM record already implies that a *remote* core held the line
    /// Modified, so contention is established by the record's existence; the
    /// model only has to decide which bytes are involved, exactly as the
    /// paper's Figure 5 does. The `pc` and `is_write` arguments describe the
    /// recorded access (from the binary's load/store sets) and are retained
    /// for future heuristics, but the classification uses the byte footprint.
    pub fn observe(
        &mut self,
        addr: Addr,
        size: u8,
        is_write: bool,
        pc: Pc,
    ) -> Option<SharingClass> {
        let _ = pc;
        let line = line_of(addr);
        let bitmap = Self::bitmap_for(addr, size);
        let prev = self.lines.insert(
            line,
            LastAccess {
                was_write: is_write,
                bitmap,
            },
        );
        let prev = prev?;
        if prev.bitmap & bitmap != 0 {
            Some(SharingClass::TrueSharing)
        } else {
            Some(SharingClass::FalseSharing)
        }
    }

    /// Forget everything (used between detection windows in tests).
    pub fn clear(&mut self) {
        self.lines.clear();
    }

    /// Fold another model's per-line state into this one, deterministically:
    /// the other map is drained into a vector and *sorted by line address*
    /// before insertion, so the merged table is independent of either map's
    /// iteration order — the sorted-merge discipline `laser-lint`'s
    /// `shard-merge` rule enforces for every cross-shard reduction.
    ///
    /// Where both models track a line, the absorbed model's (later) access
    /// wins. Under line-hash shard routing this never happens: a line's
    /// records all hash to one shard, so the maps are disjoint and absorbing
    /// every shard reconstructs exactly the inline model.
    pub fn absorb(&mut self, other: CacheLineModel) {
        let mut entries: Vec<(Addr, LastAccess)> = other.lines.into_iter().collect(); // lint:allow(hash-iter) — drained into a Vec and sorted by key before any use
        entries.sort_unstable_by_key(|(addr, _)| *addr);
        for (addr, last) in entries {
            self.lines.insert(addr, last);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_access_is_unclassified() {
        let mut m = CacheLineModel::new();
        assert_eq!(m.observe(0x1000, 8, true, 0x40_0000), None);
        assert_eq!(m.tracked_lines(), 1);
    }

    #[test]
    fn overlapping_write_then_read_is_true_sharing() {
        let mut m = CacheLineModel::new();
        m.observe(0x1000, 8, true, 0x40_0000);
        assert_eq!(
            m.observe(0x1000, 8, false, 0x40_0010),
            Some(SharingClass::TrueSharing)
        );
        // Partial overlap also counts (4-byte write within the 8 bytes).
        assert_eq!(
            m.observe(0x1004, 4, true, 0x40_0020),
            Some(SharingClass::TrueSharing)
        );
    }

    #[test]
    fn disjoint_writes_in_one_line_are_false_sharing() {
        // The Figure 5 example: a previous 2-byte write at the start of the
        // line and an incoming 4-byte write at offset 4.
        let mut m = CacheLineModel::new();
        m.observe(0x1000, 2, true, 0x40_0000);
        assert_eq!(
            m.observe(0x1004, 4, true, 0x40_0010),
            Some(SharingClass::FalseSharing)
        );
    }

    #[test]
    fn load_only_records_still_classify_by_footprint() {
        // Read-read sharing does not generate HITMs at all, so when two
        // load records for one line do arrive, a remote writer must exist:
        // disjoint footprints indicate false sharing, overlapping ones true
        // sharing.
        let mut m = CacheLineModel::new();
        m.observe(0x2000, 8, false, 0x40_0000);
        assert_eq!(
            m.observe(0x2008, 8, false, 0x40_0004),
            Some(SharingClass::FalseSharing)
        );
        assert_eq!(
            m.observe(0x2008, 8, false, 0x40_0008),
            Some(SharingClass::TrueSharing)
        );
    }

    #[test]
    fn repeated_overlapping_writes_classify_as_true_sharing() {
        // HITM records only exist for *inter-thread* transfers, so two
        // consecutive records hitting the same bytes — even from the same
        // sampled instruction, as in a ticket-dispenser loop — are evidence of
        // true sharing (Figure 5 keeps no thread information).
        let mut m = CacheLineModel::new();
        m.observe(0x3000, 8, true, 0x40_0000);
        assert_eq!(
            m.observe(0x3000, 8, true, 0x40_0000),
            Some(SharingClass::TrueSharing)
        );
    }

    #[test]
    fn different_lines_are_independent() {
        let mut m = CacheLineModel::new();
        m.observe(0x1000, 8, true, 0x40_0000);
        assert_eq!(m.observe(0x1040, 8, true, 0x40_0004), None);
        assert_eq!(m.tracked_lines(), 2);
        m.clear();
        assert_eq!(m.tracked_lines(), 0);
    }

    #[test]
    fn accesses_straddling_line_end_are_clamped() {
        let mut m = CacheLineModel::new();
        // Access at offset 60 of size 8: only bytes 60..63 belong to this line.
        m.observe(0x103c, 8, true, 0x40_0000);
        assert_eq!(
            m.observe(0x1000, 4, true, 0x40_0004),
            Some(SharingClass::FalseSharing)
        );
    }
}
