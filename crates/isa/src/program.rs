//! Programs, basic blocks, program counters and source maps.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::inst::{Inst, Terminator};

/// A program counter. PCs are byte addresses inside the simulated
/// application's code region; consecutive instructions are 4 bytes apart.
pub type Pc = u64;

/// Size of an encoded instruction in bytes. PCs of adjacent instructions
/// differ by this amount, which is what the "adjacent PC" tolerance of the
/// paper's Figure 3 characterization refers to.
pub const INST_BYTES: u64 = 4;

/// Identifier of a basic block within a [`Program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct BlockId(pub u32);

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bb{}", self.0)
    }
}

/// A source-code location (file and line) associated with an instruction.
///
/// LASERDETECT aggregates HITM records by source line, so the mapping from PC
/// to `SourceLoc` plays the role of DWARF line tables.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SourceLoc {
    /// Source file name.
    pub file: String,
    /// 1-based line number.
    pub line: u32,
}

impl SourceLoc {
    /// Create a source location.
    pub fn new(file: impl Into<String>, line: u32) -> Self {
        SourceLoc {
            file: file.into(),
            line,
        }
    }

    /// The `file:line` rendering used throughout reports.
    pub fn label(&self) -> String {
        format!("{}:{}", self.file, self.line)
    }
}

impl fmt::Display for SourceLoc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.file, self.line)
    }
}

/// A basic block: a straight-line sequence of instructions ended by a single
/// terminator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BasicBlock {
    /// This block's id.
    pub id: BlockId,
    /// Human-readable label (unique within the program).
    pub label: String,
    /// Non-terminator instructions.
    pub insts: Vec<Inst>,
    /// The terminator.
    pub term: Terminator,
}

impl BasicBlock {
    /// Number of instructions including the terminator.
    pub fn len(&self) -> usize {
        self.insts.len() + 1
    }

    /// A block always contains at least its terminator.
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// Where a PC points within a program: which block, and which instruction
/// index inside it (`inst_index == insts.len()` denotes the terminator).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PcSlot {
    /// Block containing the instruction.
    pub block: BlockId,
    /// Index within the block; equal to the instruction count for the
    /// terminator slot.
    pub inst_index: usize,
}

/// A complete program: a set of basic blocks with assigned PCs and a source
/// map.
///
/// Programs are immutable once built (see
/// [`ProgramBuilder`](crate::builder::ProgramBuilder)); the repair tool
/// produces *instrumentation plans* that the simulator applies at execution
/// time rather than mutating the program.
#[derive(Debug, Clone)]
pub struct Program {
    name: String,
    blocks: Vec<BasicBlock>,
    base_pc: Pc,
    /// Flattened PC layout: `layout[i]` is the slot of the instruction at
    /// `base_pc + i * INST_BYTES`.
    layout: Vec<PcSlot>,
    /// First PC of each block.
    block_start: Vec<Pc>,
    /// Source location per flattened instruction index.
    src: Vec<Option<SourceLoc>>,
    label_index: BTreeMap<String, BlockId>,
}

impl Program {
    /// Construct a program from its parts. Used by the builder; prefer
    /// [`ProgramBuilder`](crate::builder::ProgramBuilder).
    pub(crate) fn from_parts(
        name: String,
        blocks: Vec<BasicBlock>,
        base_pc: Pc,
        src_per_slot: Vec<Vec<Option<SourceLoc>>>,
    ) -> Self {
        let mut layout = Vec::new();
        let mut block_start = Vec::with_capacity(blocks.len());
        let mut src = Vec::new();
        let mut label_index = BTreeMap::new();
        for (bi, block) in blocks.iter().enumerate() {
            block_start.push(base_pc + layout.len() as u64 * INST_BYTES);
            label_index.insert(block.label.clone(), block.id);
            for i in 0..block.len() {
                layout.push(PcSlot {
                    block: block.id,
                    inst_index: i,
                });
                src.push(src_per_slot[bi].get(i).cloned().flatten());
            }
        }
        Program {
            name,
            blocks,
            base_pc,
            layout,
            block_start,
            src,
            label_index,
        }
    }

    /// Program name (the "binary" name used in reports).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Lowest PC of the program's code.
    pub fn base_pc(&self) -> Pc {
        self.base_pc
    }

    /// One-past-the-highest PC of the program's code.
    pub fn end_pc(&self) -> Pc {
        self.base_pc + self.layout.len() as u64 * INST_BYTES
    }

    /// Total number of instructions (including terminators).
    pub fn num_insts(&self) -> usize {
        self.layout.len()
    }

    /// All basic blocks, ordered by id.
    pub fn blocks(&self) -> &[BasicBlock] {
        &self.blocks
    }

    /// Access a block by id.
    ///
    /// # Panics
    /// Panics if the id does not belong to this program.
    pub fn block(&self, id: BlockId) -> &BasicBlock {
        &self.blocks[id.0 as usize]
    }

    /// Look up a block by its label.
    pub fn block_by_label(&self, label: &str) -> Option<BlockId> {
        self.label_index.get(label).copied()
    }

    /// PC of the first instruction of `block`.
    pub fn block_entry_pc(&self, block: BlockId) -> Pc {
        self.block_start[block.0 as usize]
    }

    /// The slot (block and index) a PC refers to, if it is in range and
    /// aligned.
    pub fn slot_of(&self, pc: Pc) -> Option<PcSlot> {
        if pc < self.base_pc || !pc.is_multiple_of(INST_BYTES) {
            return None;
        }
        let idx = ((pc - self.base_pc) / INST_BYTES) as usize;
        self.layout.get(idx).copied()
    }

    /// True if `pc` points at an instruction of this program.
    pub fn contains_pc(&self, pc: Pc) -> bool {
        self.slot_of(pc).is_some()
    }

    /// The non-terminator instruction at `pc`, or `None` for terminator slots
    /// and out-of-range PCs.
    pub fn inst_at(&self, pc: Pc) -> Option<&Inst> {
        let slot = self.slot_of(pc)?;
        let block = self.block(slot.block);
        block.insts.get(slot.inst_index)
    }

    /// The terminator at `pc`, if `pc` refers to a terminator slot.
    pub fn terminator_at(&self, pc: Pc) -> Option<&Terminator> {
        let slot = self.slot_of(pc)?;
        let block = self.block(slot.block);
        if slot.inst_index == block.insts.len() {
            Some(&block.term)
        } else {
            None
        }
    }

    /// Source location recorded for the instruction at `pc`.
    pub fn source_of(&self, pc: Pc) -> Option<&SourceLoc> {
        if pc < self.base_pc || !pc.is_multiple_of(INST_BYTES) {
            return None;
        }
        let idx = ((pc - self.base_pc) / INST_BYTES) as usize;
        self.src.get(idx).and_then(|s| s.as_ref())
    }

    /// PC of the instruction at index `inst_index` (counting the terminator as
    /// the last index) of `block`.
    pub fn pc_of(&self, block: BlockId, inst_index: usize) -> Pc {
        self.block_start[block.0 as usize] + inst_index as u64 * INST_BYTES
    }

    /// Iterate over every `(pc, block, inst_index)` triple of the program.
    pub fn iter_pcs(&self) -> impl Iterator<Item = (Pc, PcSlot)> + '_ {
        self.layout
            .iter()
            .enumerate()
            .map(move |(i, slot)| (self.base_pc + i as u64 * INST_BYTES, *slot))
    }

    /// All PCs whose source location equals `loc`.
    pub fn pcs_for_source(&self, loc: &SourceLoc) -> Vec<Pc> {
        self.iter_pcs()
            .filter(|(pc, _)| self.source_of(*pc) == Some(loc))
            .map(|(pc, _)| pc)
            .collect()
    }

    /// Render the program as text (a tiny disassembler).
    pub fn disassemble(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for block in &self.blocks {
            let _ = writeln!(out, "{} ({}):", block.label, block.id);
            for (i, inst) in block.insts.iter().enumerate() {
                let pc = self.pc_of(block.id, i);
                let _ = writeln!(out, "  {pc:#08x}: {inst}");
            }
            let pc = self.pc_of(block.id, block.insts.len());
            let _ = writeln!(out, "  {pc:#08x}: {}", block.term);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::inst::{Operand, Reg};

    fn tiny_program() -> Program {
        let mut b = ProgramBuilder::new("tiny");
        b.source("tiny.c", 1);
        let entry = b.block("entry");
        let exit = b.block("exit");
        b.switch_to(entry);
        b.load(Reg(1), Reg(0), 0, 8);
        b.source("tiny.c", 2);
        b.store(Operand::Reg(Reg(1)), Reg(0), 8, 8);
        b.jump(exit);
        b.switch_to(exit);
        b.halt();
        b.finish()
    }

    #[test]
    fn pcs_are_sequential_and_aligned() {
        let p = tiny_program();
        let pcs: Vec<_> = p.iter_pcs().map(|(pc, _)| pc).collect();
        assert_eq!(pcs.len(), p.num_insts());
        for w in pcs.windows(2) {
            assert_eq!(w[1] - w[0], INST_BYTES);
        }
        assert_eq!(pcs[0], p.base_pc());
        assert_eq!(p.end_pc(), pcs[pcs.len() - 1] + INST_BYTES);
    }

    #[test]
    fn slot_and_inst_lookup() {
        let p = tiny_program();
        let entry = p.block_by_label("entry").unwrap();
        let pc0 = p.block_entry_pc(entry);
        assert!(p.contains_pc(pc0));
        assert!(p.inst_at(pc0).unwrap().is_load());
        assert!(p.inst_at(pc0 + INST_BYTES).unwrap().is_store());
        // Terminator slot returns None from inst_at but Some from terminator_at.
        let term_pc = pc0 + 2 * INST_BYTES;
        assert!(p.inst_at(term_pc).is_none());
        assert!(p.terminator_at(term_pc).is_some());
        // Unaligned and out-of-range PCs.
        assert!(p.slot_of(pc0 + 1).is_none());
        assert!(p.slot_of(p.end_pc()).is_none());
        assert!(p.slot_of(p.base_pc().wrapping_sub(INST_BYTES)).is_none());
    }

    #[test]
    fn source_map_tracks_lines() {
        let p = tiny_program();
        let entry = p.block_by_label("entry").unwrap();
        let pc0 = p.block_entry_pc(entry);
        assert_eq!(p.source_of(pc0).unwrap().line, 1);
        assert_eq!(p.source_of(pc0 + INST_BYTES).unwrap().line, 2);
        let line1 = SourceLoc::new("tiny.c", 1);
        assert_eq!(p.pcs_for_source(&line1), vec![pc0]);
    }

    #[test]
    fn disassembly_mentions_every_block() {
        let p = tiny_program();
        let text = p.disassemble();
        assert!(text.contains("entry"));
        assert!(text.contains("exit"));
        assert!(text.contains("halt"));
    }

    #[test]
    fn source_loc_label() {
        let loc = SourceLoc::new("a.c", 42);
        assert_eq!(loc.label(), "a.c:42");
        assert_eq!(format!("{loc}"), "a.c:42");
    }
}
