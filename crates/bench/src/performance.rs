//! Performance experiments: Figures 10, 11, 12, 13 and 14.
//!
//! Each figure is split into a *planner* (`plan_fig10`, …) that registers the
//! `(workload, tool)` cells it needs on a [`Grid`], and a *view*
//! (`fig10_from_grid`, …) that derives the figure's rows from the cached
//! [`GridResult`] without simulating anything. The `fig10_overhead`-style
//! entry points plan and run a single-figure grid for callers (tests,
//! Criterion benches) that want one figure in isolation; the `experiments`
//! binary plans every selected figure into **one** grid so shared cells run
//! once.

use laser_baselines::SheriffFailure;
use laser_workloads::SheriffCompat;

use crate::grid::{ExperimentError, Grid, GridResult};
use crate::runner::{geomean, ExperimentScale};
use crate::tool::ToolSpec;

/// One bar pair of Figure 10.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig10Row {
    /// Workload name.
    pub name: &'static str,
    /// LASER runtime normalized to native.
    pub laser: f64,
    /// VTune runtime normalized to native.
    pub vtune: f64,
}

/// Figure 10: runtime overhead of LASER and VTune.
#[derive(Debug, Clone, Default)]
pub struct Fig10Report {
    /// Per-workload normalized runtimes.
    pub rows: Vec<Fig10Row>,
}

impl Fig10Report {
    /// Geometric-mean normalized runtimes of (LASER, VTune).
    pub fn geomeans(&self) -> (f64, f64) {
        (
            geomean(&self.rows.iter().map(|r| r.laser).collect::<Vec<_>>()),
            geomean(&self.rows.iter().map(|r| r.vtune).collect::<Vec<_>>()),
        )
    }

    /// Render the figure as a table.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "Figure 10: {:<20} {:>10} {:>10}",
            "benchmark", "LASER", "VTune"
        );
        for r in &self.rows {
            let _ = writeln!(
                out,
                "           {:<20} {:>10.3} {:>10.3}",
                r.name, r.laser, r.vtune
            );
        }
        let (l, v) = self.geomeans();
        let _ = writeln!(out, "           {:<20} {:>10.3} {:>10.3}", "geomean", l, v);
        out
    }
}

/// Plan the cells Figure 10 needs.
pub fn plan_fig10(grid: &mut Grid) {
    for spec in grid.scale().workloads() {
        grid.request(&spec, ToolSpec::Native);
        grid.request(&spec, ToolSpec::Laser);
        grid.request(&spec, ToolSpec::Vtune);
    }
}

/// Derive Figure 10 from cached cells.
///
/// # Errors
/// Propagates missing or failed cells.
pub fn fig10_from_grid(grid: &GridResult) -> Result<Fig10Report, ExperimentError> {
    let mut rows = Vec::new();
    for spec in grid.scale().workloads() {
        rows.push(Fig10Row {
            name: spec.name,
            laser: grid.normalized(spec.name, ToolSpec::Laser)?,
            vtune: grid.normalized(spec.name, ToolSpec::Vtune)?,
        });
    }
    Ok(Fig10Report { rows })
}

/// Run the Figure 10 overhead comparison on a single-figure grid.
///
/// # Errors
/// Propagates simulator errors.
pub fn fig10_overhead(scale: &ExperimentScale) -> Result<Fig10Report, ExperimentError> {
    let mut grid = Grid::new(*scale);
    plan_fig10(&mut grid);
    fig10_from_grid(&grid.run())
}

/// One bar of Figure 11.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig11Row {
    /// Workload name.
    pub name: &'static str,
    /// Speedup from LASERREPAIR's online repair (native / LASER runtime), if
    /// repair triggered.
    pub automatic: Option<f64>,
    /// Speedup from the manual fix guided by LASERDETECT's report, if a fixed
    /// variant exists.
    pub manual: Option<f64>,
}

/// Figure 11: speedups from automatic repair and manual fixes.
#[derive(Debug, Clone, Default)]
pub struct Fig11Report {
    /// Per-workload speedups.
    pub rows: Vec<Fig11Row>,
}

impl Fig11Report {
    /// Render the figure as a table.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "Figure 11: {:<20} {:>12} {:>10}",
            "benchmark", "automatic", "manual"
        );
        for r in &self.rows {
            let fmt = |v: Option<f64>| v.map(|s| format!("{s:.2}x")).unwrap_or_else(|| "-".into());
            let _ = writeln!(
                out,
                "           {:<20} {:>12} {:>10}",
                r.name,
                fmt(r.automatic),
                fmt(r.manual)
            );
        }
        out
    }
}

/// The workloads the paper's Figure 11 shows.
pub const FIG11_WORKLOADS: &[&str] = &[
    "histogram'",
    "linear_regression",
    "dedup",
    "kmeans",
    "lu_ncb",
    "reverse_index",
];

/// Plan the cells Figure 11 needs.
pub fn plan_fig11(grid: &mut Grid) {
    for spec in grid.scale().workloads() {
        if !FIG11_WORKLOADS.contains(&spec.name) {
            continue;
        }
        grid.request(&spec, ToolSpec::Native);
        grid.request(&spec, ToolSpec::Laser);
        if spec.has_fix {
            grid.request(&spec, ToolSpec::NativeFixed);
        }
    }
}

/// Derive Figure 11 from cached cells.
///
/// # Errors
/// Propagates missing or failed cells.
pub fn fig11_from_grid(grid: &GridResult) -> Result<Fig11Report, ExperimentError> {
    let mut rows = Vec::new();
    for spec in grid.scale().workloads() {
        if !FIG11_WORKLOADS.contains(&spec.name) {
            continue;
        }
        let native = grid.tool_run(spec.name, ToolSpec::Native)?.cycles;
        let laser = grid.tool_run(spec.name, ToolSpec::Laser)?;
        let automatic = laser
            .repair_invoked
            .then(|| native as f64 / laser.cycles.max(1) as f64);
        let manual = if spec.has_fix {
            let fixed = grid.tool_run(spec.name, ToolSpec::NativeFixed)?.cycles;
            Some(native as f64 / fixed.max(1) as f64)
        } else {
            None
        };
        rows.push(Fig11Row {
            name: spec.name,
            automatic,
            manual,
        });
    }
    Ok(Fig11Report { rows })
}

/// Run the Figure 11 speedup experiment on a single-figure grid.
///
/// # Errors
/// Propagates simulator errors.
pub fn fig11_speedups(scale: &ExperimentScale) -> Result<Fig11Report, ExperimentError> {
    let mut grid = Grid::new(*scale);
    plan_fig11(&mut grid);
    fig11_from_grid(&grid.run())
}

/// One bar of Figure 12.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig12Row {
    /// Workload name.
    pub name: &'static str,
    /// LASER runtime normalized to native.
    pub slowdown: f64,
    /// Fraction of application time spent in the driver.
    pub driver_fraction: f64,
    /// Fraction of application time spent in the detector.
    pub detector_fraction: f64,
}

/// Figure 12: where LASER's overhead goes for the workloads with ≥ 10 %
/// overhead.
#[derive(Debug, Clone, Default)]
pub struct Fig12Report {
    /// Rows for the qualifying workloads.
    pub rows: Vec<Fig12Row>,
}

impl Fig12Report {
    /// Render the figure.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "Figure 12: {:<20} {:>10} {:>10} {:>12}",
            "benchmark", "slowdown", "driver%", "detector%"
        );
        for r in &self.rows {
            let _ = writeln!(
                out,
                "           {:<20} {:>9.2}x {:>9.2}% {:>11.2}%",
                r.name,
                r.slowdown,
                r.driver_fraction * 100.0,
                r.detector_fraction * 100.0
            );
        }
        out
    }
}

/// Plan the cells Figure 12 needs.
pub fn plan_fig12(grid: &mut Grid) {
    for spec in grid.scale().workloads() {
        grid.request(&spec, ToolSpec::Native);
        grid.request(&spec, ToolSpec::LaserDetect);
    }
}

/// Derive Figure 12 from cached cells. `min_overhead` selects which workloads
/// appear (the paper uses 10 %).
///
/// # Errors
/// Propagates missing or failed cells.
pub fn fig12_from_grid(
    grid: &GridResult,
    min_overhead: f64,
) -> Result<Fig12Report, ExperimentError> {
    let mut rows = Vec::new();
    for spec in grid.scale().workloads() {
        let slowdown = grid.normalized(spec.name, ToolSpec::LaserDetect)?;
        if slowdown < 1.0 + min_overhead {
            continue;
        }
        let laser = grid.tool_run(spec.name, ToolSpec::LaserDetect)?;
        let total = laser.cycles.max(1) as f64;
        rows.push(Fig12Row {
            name: spec.name,
            slowdown,
            driver_fraction: laser.driver_overhead_cycles as f64 / total,
            detector_fraction: laser.detector_cycles as f64 / total,
        });
    }
    Ok(Fig12Report { rows })
}

/// Run the Figure 12 overhead-breakdown experiment on a single-figure grid.
///
/// # Errors
/// Propagates simulator errors.
pub fn fig12_breakdown(
    scale: &ExperimentScale,
    min_overhead: f64,
) -> Result<Fig12Report, ExperimentError> {
    let mut grid = Grid::new(*scale);
    plan_fig12(&mut grid);
    fig12_from_grid(&grid.run(), min_overhead)
}

/// One point of Figure 13.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig13Point {
    /// Sample-after value.
    pub sav: u32,
    /// dedup runtime under LASER normalized to native.
    pub normalized_runtime: f64,
}

/// Figure 13: dedup's normalized runtime as a function of the SAV.
#[derive(Debug, Clone, Default)]
pub struct Fig13Report {
    /// One point per SAV.
    pub points: Vec<Fig13Point>,
}

impl Fig13Report {
    /// Render the sweep.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "Figure 13: {:>6} {:>20}", "SAV", "normalized runtime");
        for p in &self.points {
            let _ = writeln!(
                out,
                "           {:>6} {:>20.3}",
                p.sav, p.normalized_runtime
            );
        }
        out
    }
}

/// The SAV values of the paper's Figure 13: 1 and every prime up to 31.
pub fn fig13_savs() -> Vec<u32> {
    vec![1, 2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31]
}

/// The workload Figure 13 sweeps.
pub const FIG13_WORKLOAD: &str = "dedup";

/// Plan the cells the Figure 13 SAV sweep needs.
pub fn plan_fig13(grid: &mut Grid, savs: &[u32]) {
    let spec = laser_workloads::find(FIG13_WORKLOAD).expect("dedup exists"); // lint:allow(panic) — a missing built-in workload is a bench-table bug, not a runtime condition
    grid.request(&spec, ToolSpec::Native);
    for &sav in savs {
        grid.request(&spec, ToolSpec::LaserDetectSav(sav));
    }
}

/// Derive Figure 13 from cached cells.
///
/// # Errors
/// Propagates missing or failed cells.
pub fn fig13_from_grid(grid: &GridResult, savs: &[u32]) -> Result<Fig13Report, ExperimentError> {
    let mut points = Vec::new();
    for &sav in savs {
        points.push(Fig13Point {
            sav,
            normalized_runtime: grid.normalized(FIG13_WORKLOAD, ToolSpec::LaserDetectSav(sav))?,
        });
    }
    Ok(Fig13Report { points })
}

/// Run the Figure 13 SAV sweep on dedup on a single-figure grid.
///
/// # Errors
/// Propagates simulator errors.
pub fn fig13_sav_sweep(
    scale: &ExperimentScale,
    savs: &[u32],
) -> Result<Fig13Report, ExperimentError> {
    let mut grid = Grid::new(*scale);
    plan_fig13(&mut grid, savs);
    fig13_from_grid(&grid.run(), savs)
}

/// One group of bars of Figure 14.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig14Row {
    /// Workload name.
    pub name: &'static str,
    /// LASER normalized runtime.
    pub laser: f64,
    /// Manually fixed binary's normalized runtime, if a fix exists.
    pub manual_fix: Option<f64>,
    /// Sheriff-Detect normalized runtime, or why it did not run.
    pub sheriff_detect: Result<f64, SheriffFailure>,
    /// Sheriff-Protect normalized runtime, or why it did not run.
    pub sheriff_protect: Result<f64, SheriffFailure>,
}

/// Figure 14: LASER versus Sheriff on the Sheriff-compatible workloads.
#[derive(Debug, Clone, Default)]
pub struct Fig14Report {
    /// Per-workload rows.
    pub rows: Vec<Fig14Row>,
}

impl Fig14Report {
    /// Render the figure.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let fmt = |v: &Result<f64, SheriffFailure>| match v {
            Ok(x) => format!("{x:.2}"),
            Err(SheriffFailure::Crash) => "x".into(),
            Err(SheriffFailure::Incompatible) => "i".into(),
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "Figure 14: {:<20} {:>8} {:>10} {:>12} {:>12}",
            "benchmark", "LASER", "manualfix", "SheriffDet", "SheriffProt"
        );
        for r in &self.rows {
            let _ = writeln!(
                out,
                "           {:<20} {:>8.2} {:>10} {:>12} {:>12}",
                r.name,
                r.laser,
                r.manual_fix
                    .map(|v| format!("{v:.2}"))
                    .unwrap_or_else(|| "-".into()),
                fmt(&r.sheriff_detect),
                fmt(&r.sheriff_protect)
            );
        }
        out
    }
}

/// Plan the cells Figure 14 needs.
pub fn plan_fig14(grid: &mut Grid) {
    for spec in grid.scale().workloads() {
        if spec.sheriff != SheriffCompat::Works {
            continue;
        }
        grid.request(&spec, ToolSpec::Native);
        grid.request(&spec, ToolSpec::Laser);
        grid.request(&spec, ToolSpec::SheriffDetect);
        grid.request(&spec, ToolSpec::SheriffProtect);
        if spec.has_fix {
            grid.request(&spec, ToolSpec::NativeFixed);
        }
    }
}

/// Derive Figure 14 from cached cells.
///
/// # Errors
/// Propagates missing or failed cells.
pub fn fig14_from_grid(grid: &GridResult) -> Result<Fig14Report, ExperimentError> {
    let mut rows = Vec::new();
    for spec in grid.scale().workloads() {
        if spec.sheriff != SheriffCompat::Works {
            continue;
        }
        let native = grid.tool_run(spec.name, ToolSpec::Native)?.cycles;
        let norm = |cycles: u64| cycles as f64 / native.max(1) as f64;
        let manual_fix = if spec.has_fix {
            Some(norm(
                grid.tool_run(spec.name, ToolSpec::NativeFixed)?.cycles,
            ))
        } else {
            None
        };
        let detect = grid
            .sheriff_run(spec.name, ToolSpec::SheriffDetect)?
            .map(|run| norm(run.cycles));
        let protect = grid
            .sheriff_run(spec.name, ToolSpec::SheriffProtect)?
            .map(|run| norm(run.cycles));
        rows.push(Fig14Row {
            name: spec.name,
            laser: norm(grid.tool_run(spec.name, ToolSpec::Laser)?.cycles),
            manual_fix,
            sheriff_detect: detect,
            sheriff_protect: protect,
        });
    }
    Ok(Fig14Report { rows })
}

/// Run the Figure 14 comparison on a single-figure grid.
///
/// # Errors
/// Propagates simulator errors.
pub fn fig14_sheriff(scale: &ExperimentScale) -> Result<Fig14Report, ExperimentError> {
    let mut grid = Grid::new(*scale);
    plan_fig14(&mut grid);
    fig14_from_grid(&grid.run())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(names: &'static [&'static str]) -> ExperimentScale {
        ExperimentScale {
            workload_scale: 0.06,
            only: Some(names),
        }
    }

    #[test]
    fn fig10_laser_is_cheaper_than_vtune() {
        let report = fig10_overhead(&tiny(&["swaptions", "histogram'", "kmeans"])).unwrap();
        assert_eq!(report.rows.len(), 3);
        let (laser, vtune) = report.geomeans();
        assert!(laser < vtune, "{}", report.render());
        assert!(vtune > 1.1, "{}", report.render());
    }

    #[test]
    fn fig11_reports_automatic_and_manual_speedups() {
        let report =
            fig11_speedups(&tiny(&["linear_regression", "histogram'", "reverse_index"])).unwrap();
        assert_eq!(report.rows.len(), 3);
        let lreg = report
            .rows
            .iter()
            .find(|r| r.name == "linear_regression")
            .unwrap();
        assert!(lreg.manual.unwrap() > 2.0, "{}", report.render());
        assert!(!report.render().is_empty());
    }

    #[test]
    fn fig13_sav_one_is_slower_than_nineteen() {
        let report = fig13_sav_sweep(&tiny(&["dedup"]), &[1, 19]).unwrap();
        assert_eq!(report.points.len(), 2);
        assert!(
            report.points[0].normalized_runtime > report.points[1].normalized_runtime,
            "{}",
            report.render()
        );
    }

    #[test]
    fn fig14_covers_only_sheriff_compatible_workloads() {
        let report = fig14_sheriff(&tiny(&["swaptions", "dedup", "water_nsquared"])).unwrap();
        // dedup is incompatible with Sheriff and therefore not a Fig 14 row.
        assert!(report.rows.iter().all(|r| r.name != "dedup"));
        assert!(!report.rows.is_empty());
        assert!(!report.render().is_empty());
    }

    #[test]
    fn fig12_selects_high_overhead_workloads_only() {
        let report = fig12_breakdown(&tiny(&["swaptions", "kmeans"]), 0.0).unwrap();
        // With a zero cutoff every selected workload appears.
        assert!(report.rows.len() <= 2);
        for r in &report.rows {
            assert!(r.driver_fraction >= 0.0 && r.driver_fraction <= 1.0);
        }
        assert!(!report.render().is_empty());
    }

    #[test]
    fn shared_grid_serves_multiple_figures_from_one_run() {
        // fig10 and fig12 overlap on every native cell; a shared grid plans
        // the union and both figures derive from the same cached cells.
        let scale = tiny(&["swaptions", "histogram'"]);
        let mut grid = Grid::new(scale);
        plan_fig10(&mut grid);
        plan_fig12(&mut grid);
        // native, laser, vtune, laser-detect per workload = 8 unique cells,
        // not the 10 a serial re-run of both figures would have cost.
        assert_eq!(grid.cells(), 8);
        let result = grid.run();
        let fig10 = fig10_from_grid(&result).unwrap();
        let fig12 = fig12_from_grid(&result, 0.0).unwrap();
        assert_eq!(fig10.rows.len(), 2);
        assert!(fig12.rows.len() <= 2);
        // The standalone path derives the same figure.
        assert_eq!(fig10.rows, fig10_overhead(&scale).unwrap().rows);
    }
}
