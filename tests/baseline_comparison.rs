//! Cross-tool integration tests: LASER against the VTune and Sheriff models,
//! mirroring the qualitative claims of the paper's Sections 7.1–7.3.

use laser::baselines::{Sheriff, SheriffMode, Vtune};
use laser::workloads::{find, registry, BuildOptions, SheriffCompat};
use laser::{Laser, LaserConfig};

fn opts() -> BuildOptions {
    BuildOptions::scaled(0.2)
}

#[test]
fn sheriff_can_run_only_part_of_the_suite() {
    // Paper Table 1 / Section 7.3: most of the suite either crashes under
    // Sheriff or uses unsupported constructs; LASER runs everything.
    let specs = registry();
    let works = specs
        .iter()
        .filter(|s| s.sheriff == SheriffCompat::Works)
        .count();
    let broken = specs.len() - works;
    assert!(
        works >= 10,
        "some workloads must run under Sheriff ({works})"
    );
    assert!(
        broken >= 15,
        "most of the suite should not run under Sheriff ({broken})"
    );
    // And the ones that do not run really do not produce results.
    let sheriff = Sheriff::default();
    for spec in specs
        .iter()
        .filter(|s| s.sheriff != SheriffCompat::Works)
        .take(3)
    {
        let out = sheriff.run(spec, &opts(), SheriffMode::Detect).unwrap();
        assert!(!out.ran(), "{} should not run under Sheriff", spec.name);
    }
}

#[test]
fn laser_is_cheaper_than_vtune_across_a_mixed_subset() {
    let vtune = Vtune::default();
    let mut laser_norms = Vec::new();
    let mut vtune_norms = Vec::new();
    for name in ["histogram'", "kmeans", "string_match", "swaptions", "dedup"] {
        let spec = find(name).unwrap();
        let image = spec.build(&opts());
        let native = Laser::run_native(&image).unwrap();
        let laser = Laser::new(LaserConfig::detection_only())
            .run(&image)
            .unwrap();
        let v = vtune.run(&image).unwrap();
        laser_norms.push(laser.run.cycles as f64 / native.cycles as f64);
        vtune_norms.push(v.run.cycles as f64 / native.cycles as f64);
    }
    let geo = |v: &[f64]| (v.iter().map(|x| x.ln()).sum::<f64>() / v.len() as f64).exp();
    let (laser_geo, vtune_geo) = (geo(&laser_norms), geo(&vtune_norms));
    assert!(
        laser_geo < vtune_geo,
        "LASER geomean {laser_geo:.3} should beat VTune {vtune_geo:.3}"
    );
    assert!(
        laser_geo < 1.10,
        "LASER geomean overhead too high: {laser_geo:.3}"
    );
    assert!(
        vtune_geo > 1.15,
        "VTune should pay for its always-on profiling: {vtune_geo:.3}"
    );
}

#[test]
fn sheriff_protect_fixes_false_sharing_it_cannot_see_while_laser_reports_it() {
    // Section 7.3: Sheriff-Protect speeds histogram'/linear_regression up by
    // isolation alone; LASER both reports and repairs them.
    let sheriff = Sheriff::default();
    for name in ["histogram'", "linear_regression"] {
        let spec = find(name).unwrap();
        let protect = sheriff
            .run(&spec, &opts(), SheriffMode::Protect)
            .unwrap()
            .result
            .unwrap();
        assert!(
            protect.normalized_runtime() < 1.0,
            "{name}: Sheriff-Protect should remove the false-sharing misses"
        );
        let outcome = Laser::new(LaserConfig::detection_only())
            .run(&spec.build(&opts()))
            .unwrap();
        let found = spec.known_bugs.iter().any(|bug| {
            bug.lines
                .iter()
                .any(|&l| outcome.report.line(&bug.file, l).is_some())
        });
        assert!(found, "{name}: LASER should also *report* the bug");
    }
}

#[test]
fn sheriff_slowdown_tracks_synchronization_not_contention() {
    let sheriff = Sheriff::default();
    let opts = BuildOptions::scaled(0.5);
    // water_nsquared synchronizes constantly but has no contention bug;
    // linear_regression has intense contention but no synchronization.
    let water = sheriff
        .run(
            &find("water_nsquared").unwrap(),
            &opts,
            SheriffMode::Protect,
        )
        .unwrap()
        .result
        .unwrap();
    let lreg = sheriff
        .run(
            &find("linear_regression").unwrap(),
            &opts,
            SheriffMode::Protect,
        )
        .unwrap()
        .result
        .unwrap();
    assert!(
        water.normalized_runtime() > lreg.normalized_runtime() * 2.0,
        "sync-heavy {} vs sync-free {}",
        water.normalized_runtime(),
        lreg.normalized_runtime()
    );
}

#[test]
fn vtune_reports_more_locations_than_laser_for_the_same_workload() {
    // VTune applies no pipeline filtering, so it reports at least as many
    // locations (and typically more false positives) than LASERDETECT.
    for name in ["kmeans", "bodytrack"] {
        let spec = find(name).unwrap();
        let image = spec.build(&opts());
        let laser = Laser::new(LaserConfig::detection_only())
            .run(&image)
            .unwrap();
        let vtune = Vtune::default().run(&image).unwrap();
        assert!(
            vtune.reported_lines.len() >= laser.report.lines.len(),
            "{name}: vtune {} < laser {}",
            vtune.reported_lines.len(),
            laser.report.lines.len()
        );
    }
}
