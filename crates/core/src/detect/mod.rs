//! LASERDETECT: the HITM-record processing pipeline (paper Section 4,
//! Figure 4).
//!
//! Records flow through the stages in order:
//!
//! 1. **PC filter** — records whose PC does not belong to the application or
//!    one of its libraries are dropped as spurious.
//! 2. **Stack filter** — records whose data address falls in a thread stack
//!    are dropped (stacks are not shared).
//! 3. **Aggregation** — surviving records are counted per PC and per source
//!    line; lines below the HITM-rate threshold are filtered from the final
//!    report (the threshold can be re-applied offline without rerunning).
//! 4. **Classification** — the PC is looked up in the binary's load/store
//!    sets to recover the access kind and size, and the access is replayed
//!    against the [`linemodel::CacheLineModel`] to count true- and
//!    false-sharing events per line.

pub mod linemodel;

use std::collections::BTreeMap;

use laser_isa::program::{Pc, Program, SourceLoc};
use laser_isa::MemAccessSets;
use laser_machine::memmap::PcClass;
use laser_machine::MemoryMap;
use laser_pebs::HitmRecord;

use crate::config::LaserConfig;
use crate::observe::LineRate;
use crate::report::{ContentionKind, ContentionReport, LineReport};
use linemodel::{CacheLineModel, SharingClass};

/// Cycles a detector with per-record cost `cycles_per_record` spends on a
/// batch of `n` records: the *single home* of the charge formula. Both
/// [`Detector::processing_cycles`] and the pipelined session's main-thread
/// charge go through here — they must agree exactly, or pipelined runs stop
/// being byte-identical to inline runs at the cycle level.
pub(crate) fn batch_processing_cycles(cycles_per_record: u64, n: usize) -> u64 {
    cycles_per_record * n as u64
}

#[derive(Debug, Default, Clone, Copy)]
struct PcCounters {
    records: u64,
    true_sharing: u64,
    false_sharing: u64,
}

/// One source line's aggregated detector state: the unit a sharded detector
/// stage ships from its workers to the session, and the *single* shape every
/// report derivation ([`line_rates_from`], [`trigger_pcs_from`],
/// [`report_lines_from`]) consumes — inline, single-worker and N-shard
/// sessions all reduce to a `Vec<LineAgg>` before anything user-visible is
/// computed, which is what makes their outputs byte-identical.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct LineAgg {
    /// The source line (the `<unknown>:0` sentinel for PCs with no debug
    /// info).
    pub(crate) loc: SourceLoc,
    /// Whether `loc` is a real source location. The repair trigger only
    /// considers known lines, mirroring the inline path which skips PCs
    /// without `source_of` entries.
    pub(crate) known: bool,
    pub(crate) records: u64,
    pub(crate) true_sharing: u64,
    pub(crate) false_sharing: u64,
    /// PCs contributing to this line, ascending and deduplicated.
    pub(crate) pcs: Vec<Pc>,
}

/// The live per-line HITM rates derived from aggregates: hottest line first,
/// ties broken by source location, no rate threshold applied.
pub(crate) fn line_rates_from(aggs: &[LineAgg], elapsed_seconds: f64) -> Vec<LineRate> {
    let elapsed = elapsed_seconds.max(1e-9);
    let mut lines: Vec<LineRate> = aggs
        .iter()
        .map(|agg| LineRate {
            file: agg.loc.file.clone(),
            line: agg.loc.line,
            hitm_records: agg.records,
            rate_per_sec: agg.records as f64 / elapsed,
        })
        .collect();
    lines.sort_by(|a, b| {
        b.hitm_records
            .cmp(&a.hitm_records)
            .then_with(|| a.file.cmp(&b.file))
            .then(a.line.cmp(&b.line))
    });
    lines
}

/// The repair-trigger PC set derived from aggregates: PCs of known source
/// lines whose contention is dominated by false sharing and whose HITM-record
/// rate exceeds `min_line_rate` (Section 4.4).
pub(crate) fn trigger_pcs_from(
    aggs: &[LineAgg],
    elapsed_seconds: f64,
    min_line_rate: f64,
) -> Vec<Pc> {
    let elapsed = elapsed_seconds.max(1e-9);
    let mut pcs = Vec::new();
    for agg in aggs {
        if !agg.known {
            continue;
        }
        let rate = agg.records as f64 / elapsed;
        if rate >= min_line_rate && agg.false_sharing > agg.true_sharing && agg.false_sharing >= 2 {
            pcs.extend(agg.pcs.iter().copied());
        }
    }
    pcs.sort_unstable();
    pcs.dedup();
    pcs
}

/// The end-of-run report lines derived from aggregates, with the rate
/// threshold applied.
pub(crate) fn report_lines_from(
    aggs: &[LineAgg],
    elapsed_seconds: f64,
    rate_threshold: f64,
) -> Vec<LineReport> {
    let elapsed = elapsed_seconds.max(1e-9);
    let mut lines: Vec<LineReport> = aggs
        .iter()
        .map(|agg| LineReport {
            location: agg.loc.clone(),
            hitm_records: agg.records,
            rate_per_sec: agg.records as f64 / elapsed,
            true_sharing_events: agg.true_sharing,
            false_sharing_events: agg.false_sharing,
            kind: Detector::classify(agg.records, agg.true_sharing, agg.false_sharing),
            pcs: agg.pcs.clone(),
        })
        .filter(|l| l.rate_per_sec >= rate_threshold)
        .collect();
    lines.sort_by(|a, b| {
        b.hitm_records
            .cmp(&a.hitm_records)
            .then(a.location.cmp(&b.location))
    });
    lines
}

/// The online contention detector.
#[derive(Debug)]
pub struct Detector {
    map: MemoryMap,
    memsets: MemAccessSets,
    source_of: BTreeMap<Pc, SourceLoc>,
    per_pc: BTreeMap<Pc, PcCounters>,
    model: CacheLineModel,
    total_records: u64,
    dropped_non_code: u64,
    dropped_stack: u64,
    detector_cycles_per_record: u64,
}

impl Detector {
    /// Create a detector for `program` running in the address space described
    /// by `map`. The program binary is analysed up front to build the
    /// load/store sets.
    pub fn new(config: &LaserConfig, program: &Program, map: &MemoryMap) -> Self {
        let memsets = MemAccessSets::analyze(program);
        let mut source_of = BTreeMap::new();
        for (pc, _) in program.iter_pcs() {
            if let Some(loc) = program.source_of(pc) {
                source_of.insert(pc, loc.clone());
            }
        }
        Detector {
            map: map.clone(),
            memsets,
            source_of,
            per_pc: BTreeMap::new(),
            model: CacheLineModel::new(),
            total_records: 0,
            dropped_non_code: 0,
            dropped_stack: 0,
            detector_cycles_per_record: config.detector_cycles_per_record,
        }
    }

    /// Feed a batch of records through the pipeline. Returns the number of
    /// records that survived filtering.
    ///
    /// Records arrive from the driver in per-core bursts (each PEBS buffer is
    /// drained on its own interrupt); the detector re-orders each batch by the
    /// record timestamp so the cache-line model sees the true inter-thread
    /// interleaving.
    pub fn process(&mut self, records: &[HitmRecord]) -> usize {
        let mut records: Vec<HitmRecord> = records.to_vec();
        records.sort_by_key(|r| r.cycle);
        let mut kept = 0;
        for r in &records {
            self.total_records += 1;
            match self.map.classify_pc(r.pc) {
                PcClass::Application | PcClass::Library => {}
                PcClass::Other => {
                    self.dropped_non_code += 1;
                    continue;
                }
            }
            if self.map.is_stack(r.data_addr) {
                self.dropped_stack += 1;
                continue;
            }
            kept += 1;
            let counters = self.per_pc.entry(r.pc).or_default();
            counters.records += 1;
            // Classification needs the access kind and size from the binary's
            // load/store sets; records whose (possibly imprecise) PC is not a
            // memory instruction contribute to location detection only.
            let access = if let Some(size) = self.memsets.store_size(r.pc) {
                Some((size, true))
            } else {
                self.memsets.load_size(r.pc).map(|size| (size, false))
            };
            if let Some((size, is_write)) = access {
                if let Some(class) = self.model.observe(r.data_addr, size, is_write, r.pc) {
                    let counters = self.per_pc.entry(r.pc).or_default();
                    match class {
                        SharingClass::TrueSharing => counters.true_sharing += 1,
                        SharingClass::FalseSharing => counters.false_sharing += 1,
                    }
                }
            }
        }
        kept
    }

    /// Cycles the detector process spends handling `n` records; the system
    /// charges this to the machine because the detector shares the chip with
    /// the application.
    pub fn processing_cycles(&self, n: usize) -> u64 {
        batch_processing_cycles(self.detector_cycles_per_record, n)
    }

    /// Total records received so far (before filtering).
    pub fn records_received(&self) -> u64 {
        self.total_records
    }

    /// Total false-sharing events observed so far across all PCs.
    pub fn false_sharing_events(&self) -> u64 {
        self.per_pc.values().map(|c| c.false_sharing).sum()
    }

    /// Total true-sharing events observed so far across all PCs.
    pub fn true_sharing_events(&self) -> u64 {
        self.per_pc.values().map(|c| c.true_sharing).sum()
    }

    /// The current false-sharing event rate (events per second of dilated
    /// benchmark time); LASERREPAIR is invoked when this crosses the
    /// configured threshold.
    pub fn false_sharing_rate(&self, elapsed_seconds: f64) -> f64 {
        if elapsed_seconds <= 0.0 {
            0.0
        } else {
            self.false_sharing_events() as f64 / elapsed_seconds
        }
    }

    /// The live per-line HITM rates, hottest line first (ties broken by
    /// source location), with no rate threshold applied. This is the
    /// detector's intra-run view, carried by
    /// [`LaserEvent::DetectionUpdate`](crate::observe::LaserEvent) so
    /// observers can watch contention build while the run advances; the
    /// end-of-run [`Detector::report`] applies the threshold.
    pub fn line_rates(&self, elapsed_seconds: f64) -> Vec<LineRate> {
        line_rates_from(&self.line_aggregates(), elapsed_seconds)
    }

    /// This detector's per-line aggregates, sorted by source location. The
    /// shardable core of every report derivation: a pipelined session ships
    /// these from the driver stage's mirror detector inside each charge
    /// ledger; an inline session consumes its own directly. Both paths feed
    /// the same pure derivations, which is what keeps the deployment shape
    /// invisible in the output.
    pub(crate) fn line_aggregates(&self) -> Vec<LineAgg> {
        let mut per_line: BTreeMap<SourceLoc, LineAgg> = BTreeMap::new();
        for (&pc, c) in &self.per_pc {
            let (loc, known) = match self.source_of.get(&pc) {
                Some(loc) => (loc.clone(), true),
                None => (SourceLoc::new("<unknown>", 0), false),
            };
            let agg = per_line.entry(loc.clone()).or_insert_with(|| LineAgg {
                loc,
                known,
                records: 0,
                true_sharing: 0,
                false_sharing: 0,
                pcs: Vec::new(),
            });
            agg.records += c.records;
            agg.true_sharing += c.true_sharing;
            agg.false_sharing += c.false_sharing;
            // `per_pc` iterates PCs ascending, so each line's list stays
            // sorted and duplicate-free without a post-pass.
            agg.pcs.push(pc);
        }
        per_line.into_values().collect()
    }

    /// Fold another detector's observations into this one (the report-time
    /// merge of a sharded pipeline, see the session's shard docs).
    ///
    /// Per-PC counters and totals sum; the cache-line model merges through a
    /// sorted insert ([`CacheLineModel::absorb`]). Under line-hash routing
    /// the shards' state is disjoint — every line and every PC lives in
    /// exactly one shard — so absorbing all shards into one reconstructs
    /// precisely the detector an inline run would hold.
    pub fn absorb(&mut self, other: Detector) {
        for (pc, c) in other.per_pc {
            let e = self.per_pc.entry(pc).or_default();
            e.records += c.records;
            e.true_sharing += c.true_sharing;
            e.false_sharing += c.false_sharing;
        }
        self.model.absorb(other.model);
        self.total_records += other.total_records;
        self.dropped_non_code += other.dropped_non_code;
        self.dropped_stack += other.dropped_stack;
    }

    /// PCs implicated in false sharing, ordered by decreasing false-sharing
    /// evidence. These seed LASERREPAIR's control-flow analysis.
    ///
    /// Noise PCs (imprecise records scattered over the binary) are excluded by
    /// requiring each PC to carry a meaningful fraction of the strongest PC's
    /// false-sharing evidence; feeding stray PCs to the control-flow analysis
    /// would otherwise drag unrelated blocks into the instrumented region.
    pub fn false_sharing_pcs(&self) -> Vec<Pc> {
        let mut v: Vec<(Pc, u64)> = self
            .per_pc
            .iter()
            .filter(|(_, c)| c.false_sharing > c.true_sharing && c.false_sharing > 0)
            .map(|(&pc, c)| (pc, c.false_sharing))
            .collect();
        let top = v.iter().map(|(_, n)| *n).max().unwrap_or(0);
        let min_evidence = (top / 10).max(2);
        v.retain(|(_, n)| *n >= min_evidence);
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v.into_iter().map(|(pc, _)| pc).collect()
    }

    /// PCs of source lines whose contention is dominated by false sharing and
    /// whose HITM-record rate exceeds `min_line_rate` — the condition under
    /// which the system hands control to LASERREPAIR (Section 4.4).
    pub fn repair_trigger_pcs(&self, elapsed_seconds: f64, min_line_rate: f64) -> Vec<Pc> {
        trigger_pcs_from(&self.line_aggregates(), elapsed_seconds, min_line_rate)
    }

    fn classify(records: u64, ts: u64, fs: u64) -> ContentionKind {
        let evidence = ts + fs;
        if evidence == 0 || (evidence as f64) < (records as f64) * 0.15 {
            // Not enough (or not trustworthy enough) data-address evidence —
            // the paper's linear_regression case, where write-triggered
            // records have very low data-address accuracy.
            return ContentionKind::Unknown;
        }
        if fs >= ts {
            ContentionKind::FalseSharing
        } else {
            ContentionKind::TrueSharing
        }
    }

    /// Produce the report, applying `rate_threshold` (HITM records per second
    /// of benchmark time). The threshold is applied here, offline, so it can
    /// be adjusted without rerunning the program — exactly as the paper
    /// describes.
    pub fn report(
        &self,
        workload: &str,
        elapsed_seconds: f64,
        rate_threshold: f64,
        repair_invoked: bool,
    ) -> ContentionReport {
        let lines = report_lines_from(&self.line_aggregates(), elapsed_seconds, rate_threshold);
        ContentionReport {
            workload: workload.to_string(),
            lines,
            total_records: self.total_records,
            dropped_non_code: self.dropped_non_code,
            dropped_stack: self.dropped_stack,
            elapsed_seconds,
            repair_invoked,
            // Ground truth the detector cannot see from sampled records; the
            // session fills it in from machine statistics.
            remote_hitm_share: 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use laser_isa::inst::{Operand, Reg};
    use laser_isa::ProgramBuilder;
    use laser_machine::memmap::{Region, RegionKind};
    use laser_machine::CoreId;

    /// A program with one store line (line 10) and one load line (line 20).
    fn program() -> Program {
        let mut b = ProgramBuilder::new("det");
        let blk = b.block("main");
        b.switch_to(blk);
        b.source("det.c", 10);
        b.store(Operand::Imm(1), Reg(0), 0, 8); // pc base+0
        b.source("det.c", 20);
        b.load(Reg(1), Reg(0), 8, 8); // pc base+4
        b.source("det.c", 30);
        b.nop(); // pc base+8
        b.halt();
        b.finish()
    }

    fn map(p: &Program) -> MemoryMap {
        let mut m = MemoryMap::new();
        m.add(Region::new(
            p.base_pc(),
            p.end_pc() + 0x1000,
            RegionKind::AppCode,
            "det",
        ));
        m.add(Region::new(
            0x1000_0000,
            0x2000_0000,
            RegionKind::Heap,
            "[heap]",
        ));
        m.add(Region::new(
            0x7f00_0000,
            0x7f10_0000,
            RegionKind::Stack(0),
            "[stack:0]",
        ));
        m
    }

    fn record(pc: Pc, addr: u64, cycle: u64) -> HitmRecord {
        HitmRecord {
            pc,
            data_addr: addr,
            core: CoreId(0),
            cycle,
        }
    }

    #[test]
    fn spurious_and_stack_records_are_dropped() {
        let p = program();
        let m = map(&p);
        let mut d = Detector::new(&LaserConfig::default(), &p, &m);
        let kept = d.process(&[
            record(0xdead_0000, 0x1000_0000, 1), // PC outside code
            record(p.base_pc(), 0x7f00_0080, 2), // stack data address
            record(p.base_pc(), 0x1000_0000, 3), // good
        ]);
        assert_eq!(kept, 1);
        let r = d.report("det", 1.0, 0.0, false);
        assert_eq!(r.dropped_non_code, 1);
        assert_eq!(r.dropped_stack, 1);
        assert_eq!(r.total_records, 3);
        assert_eq!(r.lines.len(), 1);
        assert_eq!(r.lines[0].location.line, 10);
    }

    #[test]
    fn rate_threshold_filters_cold_lines() {
        let p = program();
        let m = map(&p);
        let mut d = Detector::new(&LaserConfig::default(), &p, &m);
        // 1000 records on line 10, 2 records on line 20.
        let mut records = Vec::new();
        for i in 0..1000 {
            records.push(record(p.base_pc(), 0x1000_0000 + (i % 2) * 8, i));
        }
        records.push(record(p.base_pc() + 4, 0x1000_0100, 2000));
        records.push(record(p.base_pc() + 4, 0x1000_0108, 2001));
        d.process(&records);
        // Over 1 second: line 10 at 1000/s, line 20 at 2/s.
        let r = d.report("det", 1.0, 100.0, false);
        assert_eq!(r.lines.len(), 1);
        assert_eq!(r.lines[0].location.line, 10);
        // Lowering the threshold offline brings line 20 back.
        let r = d.report("det", 1.0, 1.0, false);
        assert_eq!(r.lines.len(), 2);
    }

    #[test]
    fn false_sharing_is_classified_and_feeds_repair_trigger() {
        let p = program();
        let m = map(&p);
        let mut d = Detector::new(&LaserConfig::default(), &p, &m);
        // Alternating disjoint 8-byte writes within one 64-byte line.
        let mut records = Vec::new();
        for i in 0..500u64 {
            let addr = 0x1000_0000 + (i % 2) * 8;
            records.push(record(p.base_pc(), addr, i));
        }
        d.process(&records);
        assert!(d.false_sharing_events() > 400);
        assert_eq!(d.true_sharing_events(), 0);
        assert!(d.false_sharing_rate(1.0) > 400.0);
        assert_eq!(d.false_sharing_pcs(), vec![p.base_pc()]);
        let r = d.report("det", 1.0, 0.0, false);
        assert_eq!(r.lines[0].kind, ContentionKind::FalseSharing);
    }

    #[test]
    fn true_sharing_is_classified() {
        let p = program();
        let m = map(&p);
        let mut d = Detector::new(&LaserConfig::default(), &p, &m);
        // Store and load of the *same* 8 bytes, alternating PCs.
        let mut records = Vec::new();
        for i in 0..500u64 {
            let pc = if i % 2 == 0 {
                p.base_pc()
            } else {
                p.base_pc() + 4
            };
            records.push(record(pc, 0x1000_0000, i));
        }
        d.process(&records);
        assert!(d.true_sharing_events() > 400);
        let r = d.report("det", 1.0, 0.0, false);
        assert!(r
            .lines
            .iter()
            .all(|l| l.kind == ContentionKind::TrueSharing));
        assert!(d.false_sharing_pcs().is_empty());
    }

    #[test]
    fn scant_evidence_is_reported_unknown() {
        let p = program();
        let m = map(&p);
        let mut d = Detector::new(&LaserConfig::default(), &p, &m);
        // Records whose addresses are scattered over unmapped space (the
        // write-write imprecision case): lots of records, no usable evidence.
        let mut records = Vec::new();
        for i in 0..300u64 {
            records.push(record(p.base_pc(), 0x4000_0000_0000 + i * 4096, i));
        }
        d.process(&records);
        let r = d.report("det", 1.0, 0.0, false);
        assert_eq!(r.lines[0].kind, ContentionKind::Unknown);
    }

    #[test]
    fn pc_filter_keeps_library_code_but_drops_everything_else() {
        let p = program();
        let mut m = map(&p);
        m.add(Region::new(
            0x9000_0000,
            0x9100_0000,
            RegionKind::LibCode,
            "libc",
        ));
        let mut d = Detector::new(&LaserConfig::default(), &p, &m);
        let kept = d.process(&[
            record(p.base_pc(), 0x1000_0000, 1), // application code: kept
            record(0x9000_0100, 0x1000_0000, 2), // library code: kept
            record(0x9100_0100, 0x1000_0000, 3), // past the library: dropped
            record(0x1000_0000, 0x1000_0000, 4), // PC in the heap: dropped
            record(0x7f00_0010, 0x1000_0000, 5), // PC in a stack: dropped
        ]);
        assert_eq!(kept, 2);
        assert_eq!(d.records_received(), 5);
        let r = d.report("det", 1.0, 0.0, false);
        assert_eq!(r.dropped_non_code, 3);
        assert_eq!(r.dropped_stack, 0);
    }

    #[test]
    fn stack_filter_drops_records_before_aggregation() {
        let p = program();
        let m = map(&p);
        let mut d = Detector::new(&LaserConfig::default(), &p, &m);
        // Every record has a valid PC but a stack data address: the PC filter
        // passes them, the stack filter must still keep them out of the
        // per-line aggregation entirely.
        let records: Vec<HitmRecord> = (0..50)
            .map(|i| record(p.base_pc(), 0x7f00_0000 + i * 8, i))
            .collect();
        assert_eq!(d.process(&records), 0);
        let r = d.report("det", 1.0, 0.0, false);
        assert_eq!(r.dropped_stack, 50);
        assert!(
            r.lines.is_empty(),
            "stack records must not create report lines"
        );
        assert_eq!(d.false_sharing_events() + d.true_sharing_events(), 0);
    }

    #[test]
    fn threshold_reapplication_is_offline_and_nested() {
        let p = program();
        let m = map(&p);
        let mut d = Detector::new(&LaserConfig::default(), &p, &m);
        let mut records = Vec::new();
        for i in 0..800 {
            records.push(record(p.base_pc(), 0x1000_0000 + (i % 2) * 8, i));
        }
        for i in 0..40u64 {
            records.push(record(p.base_pc() + 4, 0x1000_0100 + (i % 2) * 8, 1000 + i));
        }
        d.process(&records);
        // Re-applying ever-higher thresholds to the same detector state never
        // reprocesses records and only ever shrinks the report.
        let received = d.records_received();
        let mut last_len = usize::MAX;
        for threshold in [0.0, 10.0, 100.0, 500.0, 1_000_000.0] {
            let r = d.report("det", 1.0, threshold, false);
            assert!(
                r.lines.len() <= last_len,
                "threshold {threshold} grew the report"
            );
            // Lines surviving a higher threshold are a subset of those
            // surviving a lower one.
            assert!(r.lines.iter().all(|l| l.rate_per_sec >= threshold));
            assert_eq!(
                d.records_received(),
                received,
                "report() must not mutate state"
            );
            last_len = r.lines.len();
        }
        assert_eq!(d.report("det", 1.0, 0.0, false).lines.len(), 2);
        assert_eq!(d.report("det", 1.0, 1_000_000.0, false).lines.len(), 0);
    }

    #[test]
    fn line_rates_are_live_unfiltered_and_hottest_first() {
        let p = program();
        let m = map(&p);
        let mut d = Detector::new(&LaserConfig::default(), &p, &m);
        assert!(d.line_rates(1.0).is_empty());
        let mut records = Vec::new();
        for i in 0..30 {
            records.push(record(p.base_pc(), 0x1000_0000 + (i % 2) * 8, i));
        }
        records.push(record(p.base_pc() + 4, 0x1000_0100, 100));
        d.process(&records);
        let rates = d.line_rates(2.0);
        // No threshold: both lines are visible, hottest first.
        assert_eq!(rates.len(), 2);
        assert_eq!((rates[0].file.as_str(), rates[0].line), ("det.c", 10));
        assert_eq!(rates[0].hitm_records, 30);
        assert!((rates[0].rate_per_sec - 15.0).abs() < 1e-9);
        assert_eq!(rates[1].line, 20);
        assert_eq!(rates[1].hitm_records, 1);
    }

    #[test]
    fn processing_cost_scales_with_records() {
        let p = program();
        let m = map(&p);
        let d = Detector::new(&LaserConfig::default(), &p, &m);
        assert_eq!(d.processing_cycles(0), 0);
        assert!(d.processing_cycles(100) > d.processing_cycles(10));
    }
}
