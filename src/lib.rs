//! # laser
//!
//! Umbrella crate for the LASER (HPCA 2016) reproduction: re-exports the
//! public API of every sub-crate so examples, integration tests and downstream
//! users can depend on a single crate.
//!
//! * [`isa`] — the mini instruction set and static analyses.
//! * [`machine`] — the multicore simulator (MESI coherence, HITM events, HTM,
//!   instrumentation hooks).
//! * [`pebs`] — the PEBS/PMU model with Haswell's record imprecision and the
//!   kernel-driver model.
//! * [`workloads`] — the 35 synthetic Phoenix/Parsec/Splash2x workloads, the
//!   characterization tests and the known-bug database.
//! * [`core`] — LASERDETECT, LASERREPAIR and the end-to-end [`Laser`] system.
//! * [`baselines`] — the VTune and Sheriff comparison tools.
//!
//! ## Quick start
//!
//! Runs are assembled with [`Laser::builder`] — configuration, machine and an
//! optional [`Observer`] — and driven to an outcome with `run()`:
//!
//! ```
//! use laser::workloads::{find, BuildOptions};
//! use laser::{Laser, LaserConfig};
//!
//! let spec = find("histogram").expect("workload exists");
//! let image = spec.build(&BuildOptions::scaled(0.05));
//! let outcome = Laser::builder()
//!     .config(LaserConfig::default())
//!     .build(&image)
//!     .run()
//!     .expect("run succeeds");
//! println!("{}", outcome.report.render());
//! ```
//!
//! An [`Observer`] attached through the builder streams typed [`LaserEvent`]s
//! while the run advances and can cancel it mid-flight — see
//! [`laser_core::observe`](crate::core::observe).
//!
//! (The paper's alternative-input variant is registered as `histogram'` —
//! apostrophe included — and is the one that false-shares.)

#![forbid(unsafe_code)]

pub use laser_baselines as baselines;
pub use laser_core as core;
pub use laser_isa as isa;
pub use laser_machine as machine;
pub use laser_pebs as pebs;
pub use laser_workloads as workloads;

pub use laser_core::{
    BudgetObserver, CellBudget, ContentionKind, EventLog, Laser, LaserConfig, LaserError,
    LaserEvent, LaserOutcome, LaserSession, Observer, PipelineConfig, SessionBuilder,
    SessionStatus, StopReason,
};
pub use laser_machine::{
    Machine, MachineConfig, ThreadPlacement, Topology, TopologySpec, WorkloadImage,
};
