//! The simulated heap allocator.
//!
//! The paper stresses that false sharing "can even arise invisibly in the
//! program due to the opaque decisions of the memory allocator": in
//! `linear_regression`, each per-thread struct is exactly 64 bytes, yet the
//! allocator's 16-byte chunk header offsets the array so that every struct
//! straddles two cache lines and neighbouring threads share both (Figure 2).
//! This allocator reproduces that behaviour: allocations are 16-byte aligned
//! and preceded by a metadata header, unless the program explicitly asks for
//! stronger alignment (the manual fix).

use serde::{Deserialize, Serialize};

use crate::addr::Addr;

/// Size of the allocator's per-chunk metadata header, in bytes. Matches
/// common `malloc` implementations and produces the Figure 2 layout.
pub const CHUNK_HEADER_BYTES: u64 = 16;

/// Default allocation alignment (16 bytes, like glibc malloc).
pub const DEFAULT_ALIGN: u64 = 16;

/// Errors returned by the allocator.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum AllocError {
    /// The heap region is exhausted.
    OutOfMemory {
        /// Bytes requested.
        requested: u64,
        /// Bytes remaining.
        remaining: u64,
    },
    /// The requested alignment is not a power of two.
    BadAlignment(u64),
}

impl std::fmt::Display for AllocError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AllocError::OutOfMemory {
                requested,
                remaining,
            } => {
                write!(
                    f,
                    "heap exhausted: requested {requested} bytes, {remaining} remaining"
                )
            }
            AllocError::BadAlignment(a) => write!(f, "alignment {a} is not a power of two"),
        }
    }
}

impl std::error::Error for AllocError {}

/// A bump allocator over the simulated heap region.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HeapAllocator {
    start: Addr,
    end: Addr,
    cursor: Addr,
    /// Extra bytes added before every allocation, used to model incidental
    /// layout perturbations (the paper's `lu_ncb` case, where merely running
    /// under LASER shifted the layout and removed false sharing).
    perturbation: u64,
    allocations: Vec<(Addr, u64)>,
}

impl HeapAllocator {
    /// Create an allocator managing `[start, end)`.
    ///
    /// # Panics
    /// Panics if the region is empty.
    pub fn new(start: Addr, end: Addr) -> Self {
        assert!(start < end, "heap region must be non-empty");
        HeapAllocator {
            start,
            end,
            cursor: start,
            perturbation: 0,
            allocations: Vec::new(),
        }
    }

    /// The base address of the managed region.
    pub fn start(&self) -> Addr {
        self.start
    }

    /// Add a fixed offset before every subsequent allocation, modelling an
    /// environment-induced layout shift.
    pub fn set_perturbation(&mut self, bytes: u64) {
        self.perturbation = bytes;
    }

    /// The configured perturbation.
    pub fn perturbation(&self) -> u64 {
        self.perturbation
    }

    /// Allocate `size` bytes with the default (16-byte) alignment, preceded by
    /// a metadata header as a real `malloc` would be.
    ///
    /// # Errors
    /// Returns [`AllocError::OutOfMemory`] if the heap is exhausted.
    pub fn malloc(&mut self, size: u64) -> Result<Addr, AllocError> {
        self.malloc_aligned(size, DEFAULT_ALIGN)
    }

    /// Allocate `size` bytes aligned to `align` (must be a power of two).
    /// Alignments of 64 or more model `posix_memalign`-style cache-line
    /// alignment — the classic manual fix for false sharing.
    ///
    /// # Errors
    /// Returns [`AllocError::BadAlignment`] for non-power-of-two alignments
    /// and [`AllocError::OutOfMemory`] when the heap is exhausted.
    pub fn malloc_aligned(&mut self, size: u64, align: u64) -> Result<Addr, AllocError> {
        if align == 0 || !align.is_power_of_two() {
            return Err(AllocError::BadAlignment(align));
        }
        let mut base = self.cursor + self.perturbation;
        // Reserve space for the chunk header, then align the payload.
        base += CHUNK_HEADER_BYTES;
        let aligned = (base + align - 1) & !(align - 1);
        let end = aligned + size.max(1);
        if end > self.end {
            return Err(AllocError::OutOfMemory {
                requested: size,
                remaining: self.end.saturating_sub(self.cursor),
            });
        }
        self.cursor = end;
        self.allocations.push((aligned, size));
        Ok(aligned)
    }

    /// Number of allocations performed.
    pub fn num_allocations(&self) -> usize {
        self.allocations.len()
    }

    /// All allocations as `(address, size)` pairs, in allocation order.
    pub fn allocations(&self) -> &[(Addr, u64)] {
        &self.allocations
    }

    /// Bytes remaining in the heap region.
    pub fn remaining(&self) -> u64 {
        self.end.saturating_sub(self.cursor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::{line_of, CACHE_LINE_SIZE};

    #[test]
    fn default_malloc_offsets_payload_by_header() {
        let mut a = HeapAllocator::new(0x1000_0000, 0x1001_0000);
        let p = a.malloc(64).unwrap();
        // Payload is 16-byte aligned but NOT 64-byte aligned: a 64-byte struct
        // straddles two lines, as in the paper's Figure 2.
        assert_eq!(p % DEFAULT_ALIGN, 0);
        assert_ne!(p % CACHE_LINE_SIZE, 0);
        assert_ne!(line_of(p), line_of(p + 63));
    }

    #[test]
    fn consecutive_structs_share_a_line() {
        // An array of two 64-byte structs allocated as one chunk: the second
        // half of struct 0 and first half of struct 1 share a line.
        let mut a = HeapAllocator::new(0x1000_0000, 0x1001_0000);
        let arr = a.malloc(128).unwrap();
        let s0_last = arr + 63;
        let s1_first = arr + 64;
        assert_eq!(line_of(s0_last), line_of(s1_first));
    }

    #[test]
    fn aligned_malloc_respects_alignment() {
        let mut a = HeapAllocator::new(0x1000_0000, 0x1001_0000);
        let p = a.malloc_aligned(256, 64).unwrap();
        assert_eq!(p % 64, 0);
        let q = a.malloc_aligned(8, 4096).unwrap();
        assert_eq!(q % 4096, 0);
    }

    #[test]
    fn bad_alignment_rejected() {
        let mut a = HeapAllocator::new(0x1000, 0x2000);
        assert_eq!(a.malloc_aligned(8, 3), Err(AllocError::BadAlignment(3)));
        assert_eq!(a.malloc_aligned(8, 0), Err(AllocError::BadAlignment(0)));
    }

    #[test]
    fn out_of_memory_reported() {
        let mut a = HeapAllocator::new(0x1000, 0x1100);
        let err = a.malloc(0x1000).unwrap_err();
        assert!(matches!(err, AllocError::OutOfMemory { .. }));
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn perturbation_shifts_layout() {
        let mut a = HeapAllocator::new(0x1000_0000, 0x1001_0000);
        let p1 = a.malloc(64).unwrap();
        let mut b = HeapAllocator::new(0x1000_0000, 0x1001_0000);
        b.set_perturbation(48);
        let p2 = b.malloc(64).unwrap();
        assert_ne!(p1, p2);
        assert_eq!(b.perturbation(), 48);
    }

    #[test]
    fn accounting() {
        let mut a = HeapAllocator::new(0x1000, 0x10000);
        let before = a.remaining();
        a.malloc(100).unwrap();
        a.malloc(100).unwrap();
        assert_eq!(a.num_allocations(), 2);
        assert_eq!(a.allocations().len(), 2);
        assert!(a.remaining() < before);
    }
}
