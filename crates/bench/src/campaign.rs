//! Parallel experiment campaigns: a `workload × tool` grid fanned across a
//! thread pool.
//!
//! A [`Campaign`] is the unit in which the paper's evaluation actually runs:
//! 35 workloads under up to 5 tools. Every cell — one tool on one workload —
//! is an independent, deterministic simulation, and the execution stack is
//! built from owned `Send` values (see `laser_core::session`), so cells can
//! be computed by any worker in any order. Results are stored by cell index
//! and aggregated in grid order, which makes the output **byte-identical**
//! whatever the thread count: `threads = 1` is the reference serial
//! execution, `threads = N` is just faster.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use laser_workloads::{registry, BuildOptions, WorkloadSpec};

use crate::tool::{default_tools, Tool, ToolFailure, ToolRun};

/// One `workload × tool` cell of a finished campaign.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellResult {
    /// Workload name.
    pub workload: String,
    /// Tool name.
    pub tool: String,
    /// What the tool produced, or why it could not run.
    pub outcome: Result<ToolRun, ToolFailure>,
}

/// A configured experiment campaign.
pub struct Campaign {
    workloads: Vec<WorkloadSpec>,
    tools: Vec<Box<dyn Tool>>,
    opts: BuildOptions,
    threads: usize,
}

impl Default for Campaign {
    /// The full suite under the default tool panel, one worker per available
    /// core.
    fn default() -> Self {
        Campaign::new(registry(), default_tools())
    }
}

impl Campaign {
    /// A campaign over explicit workloads and tools.
    pub fn new(workloads: Vec<WorkloadSpec>, tools: Vec<Box<dyn Tool>>) -> Self {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Campaign {
            workloads,
            tools,
            opts: BuildOptions::default(),
            threads,
        }
    }

    /// Restrict the campaign to the named workloads (silently dropping
    /// unknown names), keeping registry order.
    pub fn with_workload_names(mut self, names: &[&str]) -> Self {
        self.workloads.retain(|w| names.contains(&w.name));
        self
    }

    /// Set the build options applied to every cell.
    pub fn with_options(mut self, opts: BuildOptions) -> Self {
        self.opts = opts;
        self
    }

    /// Set the worker-thread count (clamped to at least 1).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Number of cells the campaign will run.
    pub fn cells(&self) -> usize {
        self.workloads.len() * self.tools.len()
    }

    /// The configured worker-thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Run every cell and aggregate in grid order (workload-major, tools in
    /// panel order). The aggregation is independent of the thread count.
    pub fn run(&self) -> CampaignResult {
        let total = self.cells();
        let slots: Vec<Mutex<Option<CellResult>>> = (0..total).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        let workers = self.threads.min(total.max(1));

        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    // Work stealing off a shared cell counter: each worker
                    // claims the next unclaimed cell until the grid is drained.
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= total {
                        break;
                    }
                    let workload = &self.workloads[i / self.tools.len()];
                    let tool = &self.tools[i % self.tools.len()];
                    let outcome = tool.run(workload, &self.opts);
                    *slots[i].lock().unwrap() = Some(CellResult {
                        workload: workload.name.to_string(),
                        tool: tool.name().to_string(),
                        outcome,
                    });
                });
            }
        });

        CampaignResult {
            cells: slots
                .into_iter()
                .map(|slot| slot.into_inner().unwrap().expect("every cell is computed"))
                .collect(),
        }
    }
}

/// The aggregated results of a campaign, in grid order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignResult {
    /// One entry per cell, workload-major.
    pub cells: Vec<CellResult>,
}

impl CampaignResult {
    /// The cell for a given workload/tool pair, if present.
    pub fn cell(&self, workload: &str, tool: &str) -> Option<&CellResult> {
        self.cells
            .iter()
            .find(|c| c.workload == workload && c.tool == tool)
    }

    /// Runtime of `workload` under `tool` normalized to its native run;
    /// `None` unless both cells completed and the campaign included the
    /// native tool.
    pub fn normalized(&self, workload: &str, tool: &str) -> Option<f64> {
        let tool_cycles = self.cell(workload, tool)?.outcome.as_ref().ok()?.cycles;
        let native_cycles = self.cell(workload, "native")?.outcome.as_ref().ok()?.cycles;
        Some(tool_cycles as f64 / native_cycles.max(1) as f64)
    }

    /// Render the whole grid as a stable text table. Byte-identical for
    /// identical campaigns regardless of how many threads computed them.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "Campaign: {:<20} {:<16} {:>14} {:>8} {:>7}  reported",
            "workload", "tool", "cycles", "norm", "repair"
        );
        for c in &self.cells {
            match &c.outcome {
                Ok(run) => {
                    let norm = self
                        .normalized(&c.workload, &c.tool)
                        .map(|n| format!("{n:.3}"))
                        .unwrap_or_else(|| "-".to_string());
                    let _ = writeln!(
                        out,
                        "          {:<20} {:<16} {:>14} {:>8} {:>7}  {}",
                        c.workload,
                        c.tool,
                        run.cycles,
                        norm,
                        if run.repair_invoked { "yes" } else { "-" },
                        if run.reported.is_empty() {
                            "-".to_string()
                        } else {
                            run.reported.join("; ")
                        }
                    );
                }
                Err(failure) => {
                    let _ = writeln!(
                        out,
                        "          {:<20} {:<16} {:>14} {:>8} {:>7}  {failure}",
                        c.workload, c.tool, "-", "-", "-"
                    );
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tool::{LaserTool, NativeTool};
    use laser_core::LaserConfig;

    fn small_campaign(threads: usize) -> Campaign {
        Campaign::new(
            registry(),
            vec![
                Box::new(NativeTool),
                Box::new(LaserTool::new(LaserConfig::detection_only())),
            ],
        )
        .with_workload_names(&["histogram'", "swaptions"])
        .with_options(BuildOptions::scaled(0.08))
        .with_threads(threads)
    }

    #[test]
    fn grid_is_workload_major_and_complete() {
        let result = small_campaign(2).run();
        assert_eq!(result.cells.len(), 4);
        assert_eq!(
            result
                .cells
                .iter()
                .map(|c| (c.workload.as_str(), c.tool.as_str()))
                .collect::<Vec<_>>(),
            vec![
                ("histogram'", "native"),
                ("histogram'", "laser-detect"),
                ("swaptions", "native"),
                ("swaptions", "laser-detect"),
            ]
        );
        assert!(result.cells.iter().all(|c| c.outcome.is_ok()));
    }

    #[test]
    fn normalized_overhead_is_sane() {
        let result = small_campaign(4).run();
        let norm = result.normalized("histogram'", "laser-detect").unwrap();
        assert!(
            norm >= 1.0,
            "tool run cannot beat native without repair: {norm}"
        );
        assert!(result.normalized("histogram'", "native").unwrap() == 1.0);
        assert!(result.normalized("histogram'", "no-such-tool").is_none());
    }

    #[test]
    fn thread_count_caps_do_not_drop_cells() {
        // More workers than cells must still fill the grid exactly once each.
        let result = small_campaign(64).run();
        assert_eq!(result.cells.len(), 4);
        assert!(result.cells.iter().all(|c| c.outcome.is_ok()));
    }
}
