//! The campaign-backed figure pipeline's central guarantee: every figure and
//! table derived from a [`Grid`] renders **byte-identically** whether the
//! grid's cells were computed by one worker thread or many, and the
//! machine-readable emissions (JSON/CSV) inherit the same determinism.

use laser_bench::accuracy::{
    fig9_from_grid, plan_fig9, plan_table1, plan_table2, table1_from_grid, table2_from_grid,
};
use laser_bench::emit::Emit;
use laser_bench::performance::{
    fig10_from_grid, fig11_from_grid, fig12_from_grid, fig13_from_grid, fig14_from_grid,
    plan_fig10, plan_fig11, plan_fig12, plan_fig13, plan_fig14,
};
use laser_bench::xsocket::{plan_xsocket, xsocket_from_grid};
use laser_bench::{CellBudget, ExperimentScale, Grid, GridResult, PipelineConfig, TopologySpec};
use serde::json::Value;

const SAVS: &[u32] = &[1, 19];
const THRESHOLDS: &[f64] = &[32.0, 1024.0, 65536.0];

fn scale() -> ExperimentScale {
    ExperimentScale {
        workload_scale: 0.08,
        only: Some(&["histogram'", "swaptions", "linear_regression", "dedup"]),
    }
}

/// Plan every figure and table into one grid and run it at `threads`,
/// inline or with every LASER cell's detector stage pipelined.
fn full_grid_with(threads: usize, pipeline: PipelineConfig) -> GridResult {
    let mut grid = Grid::new(scale())
        .with_threads(threads)
        .with_pipeline(pipeline);
    plan_fig9(&mut grid);
    plan_fig10(&mut grid);
    plan_fig11(&mut grid);
    plan_fig12(&mut grid);
    plan_fig13(&mut grid, SAVS);
    plan_fig14(&mut grid);
    plan_table1(&mut grid);
    plan_table2(&mut grid);
    grid.run()
}

/// Plan every figure and table into one grid and run it at `threads`.
fn full_grid(threads: usize) -> GridResult {
    full_grid_with(threads, PipelineConfig::default())
}

/// Render every experiment (text, JSON and CSV) from one grid result.
fn render_all(grid: &GridResult) -> Vec<(&'static str, String)> {
    let mut out = Vec::new();
    let mut push = |name: &'static str, report: &dyn Emit, text: String| {
        out.push((name, text));
        out.push((name, report.to_json().render()));
        out.push((name, report.to_csv()));
    };
    let fig9 = fig9_from_grid(grid, THRESHOLDS).unwrap();
    push("fig9", &fig9, fig9.render());
    let fig10 = fig10_from_grid(grid).unwrap();
    push("fig10", &fig10, fig10.render());
    let fig11 = fig11_from_grid(grid).unwrap();
    push("fig11", &fig11, fig11.render());
    let fig12 = fig12_from_grid(grid, 0.0).unwrap();
    push("fig12", &fig12, fig12.render());
    let fig13 = fig13_from_grid(grid, SAVS).unwrap();
    push("fig13", &fig13, fig13.render());
    let fig14 = fig14_from_grid(grid).unwrap();
    push("fig14", &fig14, fig14.render());
    let table1 = table1_from_grid(grid).unwrap();
    push("table1", &table1, table1.render());
    let table2 = table2_from_grid(grid).unwrap();
    push("table2", &table2, table2.render());
    out
}

#[test]
fn every_figure_renders_byte_identically_for_any_thread_count() {
    let serial = full_grid(1);
    let parallel = full_grid(8);
    // The raw grids agree cell by cell...
    assert_eq!(serial.campaign().cells, parallel.campaign().cells);
    // ...and every derived artifact, in every output format, is identical.
    for ((name_a, a), (name_b, b)) in render_all(&serial).into_iter().zip(render_all(&parallel)) {
        assert_eq!(name_a, name_b);
        assert_eq!(a, b, "{name_a} differs between threads=1 and threads=8");
        assert!(!a.is_empty(), "{name_a} rendered empty");
    }
}

#[test]
fn every_figure_json_emission_parses() {
    let grid = full_grid(4);
    for (name, text) in render_all(&grid) {
        if text.starts_with('{') {
            let doc = Value::parse(&text)
                .unwrap_or_else(|e| panic!("{name} JSON does not parse: {e}\n{text}"));
            assert_eq!(
                doc.get("kind"),
                Some(&Value::Str(name.to_string())),
                "{name}"
            );
        }
    }
    // The campaign's own emission parses too.
    let doc = Value::parse(&grid.campaign().to_json().render()).unwrap();
    assert_eq!(doc.get("kind"), Some(&Value::Str("campaign".to_string())));
}

#[test]
fn pipelined_grids_render_every_figure_byte_identically_to_inline() {
    // Pipelined cells are byte-identical to inline cells, so every figure
    // and table derived from a pipelined grid — in text, JSON and CSV alike
    // — must render byte-for-byte the same as the inline reference, at any
    // thread count.
    let reference = full_grid(1);
    for threads in [1, 8] {
        let piped = full_grid_with(threads, PipelineConfig::pipelined());
        assert_eq!(reference.campaign().cells, piped.campaign().cells);
        for ((name_a, a), (name_b, b)) in render_all(&reference).into_iter().zip(render_all(&piped))
        {
            assert_eq!(name_a, name_b);
            assert_eq!(
                a, b,
                "{name_a} differs between inline and pipelined at threads={threads}"
            );
        }
    }
}

#[test]
fn pipelined_budgeted_grids_emit_byte_identically_to_inline() {
    // Budgets and pipelining compose: the budget observer rides an identical
    // event stream, so budget-exceeded cells land identically too.
    let budgeted = |threads, pipeline| {
        let mut grid = Grid::new(scale())
            .with_threads(threads)
            .with_cell_budget(CellBudget::steps(10_000))
            .with_pipeline(pipeline);
        plan_fig10(&mut grid);
        plan_table1(&mut grid);
        grid.run()
    };
    let inline = budgeted(1, PipelineConfig::default());
    let piped = budgeted(8, PipelineConfig::pipelined());
    assert_eq!(inline.campaign().cells, piped.campaign().cells);
    assert_eq!(inline.campaign().render(), piped.campaign().render());
    assert_eq!(
        inline.campaign().to_json().render(),
        piped.campaign().to_json().render()
    );
    assert_eq!(inline.campaign().to_csv(), piped.campaign().to_csv());
}

#[test]
fn topology_grids_emit_byte_identically_across_threads_and_pipelining() {
    // A grid carrying the topology axis — figure cells shifted to the
    // 2-socket preset by the grid default, plus the cross-socket sweep's
    // explicit per-topology cells — must derive and emit byte-identically
    // whatever the thread count, pipelined or inline, in all three formats.
    let build = |threads, pipeline| {
        let mut grid = Grid::new(ExperimentScale {
            workload_scale: 0.08,
            only: Some(&["histogram'", "swaptions"]),
        })
        .with_threads(threads)
        .with_pipeline(pipeline)
        .with_topology(TopologySpec::DualSocket);
        plan_fig10(&mut grid);
        plan_xsocket(&mut grid);
        grid.run()
    };
    let reference = build(1, PipelineConfig::default());
    let parallel = build(8, PipelineConfig::default());
    let piped = build(8, PipelineConfig::pipelined());
    assert_eq!(reference.campaign().cells, parallel.campaign().cells);
    assert_eq!(reference.campaign().cells, piped.campaign().cells);

    for grid in [&reference, &parallel, &piped] {
        // fig10 derives from the 2-socket cells through the grid default...
        let fig10 = fig10_from_grid(grid).unwrap();
        let xsocket = xsocket_from_grid(grid).unwrap();
        for (name, a, b) in [
            (
                "fig10",
                fig10.render(),
                fig10_from_grid(&reference).unwrap().render(),
            ),
            (
                "xsocket",
                xsocket.render(),
                xsocket_from_grid(&reference).unwrap().render(),
            ),
            ("fig10-json", fig10.to_json().render(), {
                fig10_from_grid(&reference).unwrap().to_json().render()
            }),
            ("xsocket-csv", xsocket.to_csv(), {
                xsocket_from_grid(&reference).unwrap().to_csv()
            }),
        ] {
            assert_eq!(a, b, "{name} differs between grid executions");
            assert!(!a.is_empty());
        }
    }
    // ...and the sweep's own JSON parses with its discriminator.
    let doc = Value::parse(&xsocket_from_grid(&reference).unwrap().to_json().render()).unwrap();
    assert_eq!(doc.get("kind"), Some(&Value::Str("xsocket".to_string())));
}

#[test]
fn budgeted_grids_emit_byte_identically_for_any_thread_count() {
    // Per-cell step budgets are deterministic, so a grid where some cells
    // trip the budget still aggregates — and emits, in every format —
    // byte-identically whatever the thread count.
    let budgeted = |threads| {
        let mut grid = Grid::new(scale())
            .with_threads(threads)
            .with_cell_budget(CellBudget::steps(10_000));
        plan_fig10(&mut grid);
        plan_table1(&mut grid);
        grid.run()
    };
    let serial = budgeted(1);
    let parallel = budgeted(8);
    assert_eq!(serial.campaign().cells, parallel.campaign().cells);
    assert_eq!(serial.campaign().render(), parallel.campaign().render());
    assert_eq!(
        serial.campaign().to_json().render(),
        parallel.campaign().to_json().render()
    );
    assert_eq!(serial.campaign().to_csv(), parallel.campaign().to_csv());
}
