//! The campaign runner's central guarantee: fanning a `workload × tool` grid
//! across a thread pool changes nothing but the wall-clock. A campaign run
//! with `threads = 1` (the reference serial execution) and with `threads = N`
//! must produce byte-identical aggregated results — including when per-cell
//! budgets are enabled, and including the per-run observer event stream,
//! which is identical whether a session runs inline or on a worker thread.

use laser_bench::{
    Campaign, CellBudget, Emit, LaserTool, NativeTool, SheriffTool, Tool, VtuneTool,
};
use laser_core::{EventLog, Laser, LaserConfig};
use laser_workloads::{find, registry, BuildOptions};

fn tools() -> Vec<Box<dyn Tool>> {
    vec![
        Box::new(NativeTool),
        Box::new(LaserTool::new(LaserConfig::detection_only())),
        Box::new(VtuneTool::default()),
        Box::new(SheriffTool::new(laser_baselines::SheriffMode::Detect)),
    ]
}

fn campaign(threads: usize) -> Campaign {
    Campaign::new(registry(), tools())
        .with_workload_names(&["histogram'", "swaptions", "linear_regression"])
        .expect("known workload names")
        .with_options(BuildOptions::scaled(0.08))
        .with_threads(threads)
}

#[test]
fn single_and_multi_threaded_campaigns_are_byte_identical() {
    let serial = campaign(1).run();
    let parallel = campaign(8).run();

    // Structural equality of every cell...
    assert_eq!(serial.cells, parallel.cells);
    // ...and byte-identical rendered output.
    assert_eq!(serial.render(), parallel.render());
    assert_eq!(serial.cells.len(), 12);
}

#[test]
fn repeated_parallel_runs_are_stable() {
    // Two parallel runs with the same thread count also agree — there is no
    // hidden dependence on scheduling at all.
    let a = campaign(4).run();
    let b = campaign(4).run();
    assert_eq!(a.cells, b.cells);
    assert_eq!(a.render(), b.render());
}

#[test]
fn observer_event_stream_is_identical_inline_and_on_a_worker_thread() {
    let spec = find("histogram'").expect("known workload");
    let image = spec.build(&BuildOptions::scaled(0.08));
    let config = LaserConfig::detection_only();

    let inline_log = EventLog::new();
    let inline = Laser::builder()
        .config(config.clone())
        .observer(inline_log.clone())
        .build(&image)
        .run()
        .unwrap();

    let worker_log = EventLog::new();
    let session = Laser::builder()
        .config(config)
        .observer(worker_log.clone())
        .build(&image);
    let moved = std::thread::spawn(move || session.run().unwrap())
        .join()
        .unwrap();

    // The runs agree...
    assert_eq!(inline.cycles(), moved.cycles());
    assert_eq!(inline.report, moved.report);
    // ...and so does the full event sequence, byte for byte.
    let inline_events = inline_log.events();
    assert!(!inline_events.is_empty());
    assert_eq!(inline_events, worker_log.events());
    assert_eq!(
        format!("{inline_events:?}"),
        format!("{:?}", worker_log.events())
    );
}

#[test]
fn budgeted_campaigns_are_byte_identical_for_any_thread_count() {
    // A step budget that some cells trip and others survive: the grid must
    // aggregate identically — including the budget-exceeded cells — whatever
    // the thread count, in the text, JSON and CSV emissions alike.
    let budget = CellBudget::steps(10_000);
    let serial = campaign(1).with_cell_budget(budget).run();
    let parallel = campaign(8).with_cell_budget(budget).run();

    assert_eq!(serial.cells, parallel.cells);
    assert_eq!(serial.render(), parallel.render());
    assert_eq!(serial.to_json().render(), parallel.to_json().render());
    assert_eq!(serial.to_csv(), parallel.to_csv());

    // The budget did something (this is not vacuous determinism)...
    assert!(
        serial.cells.iter().any(|c| c.status() == "budget-exceeded"),
        "budget should trip for at least one cell:\n{}",
        serial.render()
    );
    // ...without disturbing the cells that fit inside it.
    let unbudgeted = campaign(4).run();
    for (with_budget, without) in serial.cells.iter().zip(&unbudgeted.cells) {
        if with_budget.outcome.is_ok() {
            assert_eq!(with_budget, without);
        }
    }
}
