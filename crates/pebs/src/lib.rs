//! # laser-pebs
//!
//! A model of the Haswell performance-monitoring facility LASER is built on:
//! the *Precise Event-Based Sampling* (PEBS) of
//! `MEM_LOAD_UOPS_LLC_HIT_RETIRED.XSNP_HITM` events, plus the Linux kernel
//! driver the paper's system uses to configure the PMU and ship records to the
//! user-space detector.
//!
//! The crate has three layers:
//!
//! * [`record`] — the [`record::HitmRecord`] the driver delivers (PC, data
//!   address, originating core), i.e. a HITM event after the driver has
//!   stripped the register-file state.
//! * [`imprecision`] — the measured Haswell imprecision of Section 3.1 /
//!   Figure 3: load-triggered HITM records are mostly accurate (≈75 % correct
//!   data address, ≈40 % exact PC plus ≈30 % adjacent), store-triggered
//!   records are largely garbage, wrong addresses land almost entirely in
//!   unmapped memory, and wrong PCs stay inside the binary.
//! * [`pmu`] and [`driver`] — Sample-After-Value sampling into per-core PEBS
//!   buffers, buffer-full interrupts, and the overhead-charging driver that
//!   moves records into a file-like device the detector reads.
//! * [`channel`] — the bounded, double-buffered batch channel that feeds a
//!   concurrent detector stage, with backpressure or PEBS-style overflow
//!   drops when the consumer lags ([`channel::OverflowPolicy`]).
//!
//! ## Example
//!
//! ```
//! use laser_machine::{CoreId, HitmEvent, MemAccessKind, MemoryMap, Region, RegionKind};
//! use laser_pebs::imprecision::{ImprecisionModel, ImprecisionParams};
//! use laser_pebs::pmu::{Pmu, PmuConfig};
//!
//! let mut map = MemoryMap::new();
//! map.add(Region::new(0x40_0000, 0x50_0000, RegionKind::AppCode, "app"));
//! let model = ImprecisionModel::new(ImprecisionParams::perfect(), &map, (0x40_0000, 0x50_0000), 7);
//! let mut pmu = Pmu::new(PmuConfig { sav: 1, ..Default::default() }, model);
//! let event = HitmEvent {
//!     core: CoreId(0),
//!     pc: 0x40_0010,
//!     addr: 0x40_1000,
//!     size: 8,
//!     kind: MemAccessKind::Load,
//!     cycle: 100,
//! };
//! pmu.observe(&[event]);
//! let records = pmu.drain_all_buffers();
//! assert_eq!(records.len(), 1);
//! assert_eq!(records[0].pc, 0x40_0010);
//! ```

#![forbid(unsafe_code)]

pub mod channel;
pub mod driver;
pub mod imprecision;
pub mod pmu;
pub mod record;

pub use channel::{OverflowPolicy, SendOutcome};
pub use driver::{ChargeLedger, Driver, DriverConfig, DriverStats};
pub use imprecision::{ImprecisionModel, ImprecisionParams};
pub use pmu::{Pmu, PmuConfig};
pub use record::HitmRecord;
