//! Good fixture: well-formed allow annotations suppress their findings.
//! Expected findings: none.

use std::collections::HashMap;

// lint:allow(default-hasher) — the signature below demonstrates a reasoned allowance
pub fn hot_map() -> HashMap<u64, u64> {
    // lint:allow(default-hasher) — this fixture demonstrates a reasoned allowance
    HashMap::new()
}

pub fn locked(v: &std::sync::Mutex<u64>) -> u64 {
    *v.lock().unwrap() // lint:allow(panic) — poisoning only follows an earlier panic
}

pub fn sorted_listing(dir: &std::path::Path) -> std::io::Result<Vec<std::path::PathBuf>> {
    // lint:allow(fs-iter) — entries are collected and sorted before use
    let mut entries: Vec<_> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    Ok(entries)
}
