//! Offline stand-in for `serde_derive`.
//!
//! The build environment cannot reach a crates.io mirror, and this workspace
//! only uses `#[derive(Serialize, Deserialize)]` as inert markers on config
//! and result types — nothing is ever serialized. These derives therefore
//! expand to nothing; swapping the real serde back in later requires no source
//! changes in the crates that use it.

use proc_macro::TokenStream;

/// No-op `Serialize` derive: accepts any item and emits no code.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive: accepts any item and emits no code.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
