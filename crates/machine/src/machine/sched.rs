//! Thread state and the deterministic scheduler.
//!
//! The machine always runs the runnable thread whose core has the smallest
//! local clock; ties break by thread index. This yields deterministic
//! interleavings that naturally model the ping-pong timing of contended cache
//! lines: a core stalled on a 90-cycle HITM transfer falls behind and the
//! other cores run ahead.

use laser_isa::inst::{Reg, NUM_REGS};
use laser_isa::program::BlockId;

use crate::machine::Machine;

/// Execution state of one simulated thread.
pub(crate) struct ThreadCtx {
    pub(crate) name: String,
    pub(crate) core: usize,
    pub(crate) block: BlockId,
    pub(crate) idx: usize,
    pub(crate) regs: [u64; NUM_REGS],
    pub(crate) halted: bool,
}

impl Machine {
    /// The scheduling decision: the runnable thread whose core clock is
    /// lowest (ties broken by thread index, so scheduling is deterministic).
    pub(crate) fn pick_thread(&self) -> Option<usize> {
        self.threads
            .iter()
            .enumerate()
            .filter(|(_, t)| !t.halted)
            .min_by_key(|(i, t)| (self.core_cycles[t.core], *i))
            .map(|(i, _)| i)
    }

    /// True if every thread has halted.
    pub fn is_done(&self) -> bool {
        self.threads.iter().all(|t| t.halted)
    }

    /// Names of the threads, in spawn order (for reports and tests).
    pub fn thread_names(&self) -> Vec<&str> {
        self.threads.iter().map(|t| t.name.as_str()).collect()
    }

    /// Register value of a thread (for tests).
    pub fn thread_reg(&self, thread: usize, reg: Reg) -> u64 {
        self.threads[thread].regs[reg.0 as usize]
    }
}
