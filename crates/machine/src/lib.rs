//! # laser-machine
//!
//! An execution-driven multicore simulator that stands in for the paper's
//! 4-core Intel Haswell testbed.
//!
//! The LASER system only observes the machine through a few interfaces, and
//! this crate reproduces each of them:
//!
//! * a **MESI-style coherence directory** ([`coherence`]) that detects *HITM*
//!   accesses — a core touching a line that is Modified in a remote cache —
//!   which are the raw events Haswell's PEBS facility samples;
//! * a **cycle cost model** ([`timing`]) so that removing HITMs translates
//!   into speedups, as in the paper's evaluation;
//! * a **virtual memory map** ([`memmap`]) equivalent to `/proc/<pid>/maps`,
//!   which LASERDETECT's filtering stages parse;
//! * a **heap allocator model** ([`alloc`]) whose layout decisions can place
//!   two threads' data in one cache line (the paper's Figure 2);
//! * **hardware transactional memory** ([`htm`]) used by LASERREPAIR to flush
//!   its software store buffer atomically;
//! * a **dynamic instrumentation hook** ([`hook`]) standing in for Pin: a tool
//!   can intercept the memory operations of chosen PCs and service them
//!   itself (this is how the software store buffer is attached online).
//!
//! The simulator executes programs written in the
//! [`laser-isa`](../laser_isa/index.html) instruction set, one instruction at
//! a time, always advancing the core with the smallest local clock; this
//! yields deterministic, seed-controlled interleavings with per-core cycle
//! accounting.
//!
//! ## Example
//!
//! ```
//! use laser_isa::{ProgramBuilder, Reg, Operand};
//! use laser_machine::image::{WorkloadImage, ThreadSpec};
//! use laser_machine::machine::{Machine, MachineConfig};
//!
//! // Two threads incrementing counters that share a cache line => HITMs.
//! let mut b = ProgramBuilder::new("fs");
//! let body = b.block("body");
//! let done = b.block("done");
//! b.switch_to(body);
//! b.source("fs.c", 3);
//! b.load(Reg(1), Reg(0), 0, 8);
//! b.addi(Reg(1), Reg(1), 1);
//! b.store(Operand::Reg(Reg(1)), Reg(0), 0, 8);
//! b.addi(Reg(2), Reg(2), 1);
//! b.cmp_lt(Reg(3), Reg(2), Operand::Imm(1000));
//! b.branch(Reg(3), body, done);
//! b.switch_to(done);
//! b.halt();
//! let program = b.finish();
//!
//! let mut image = WorkloadImage::new("fs", program);
//! let base = image.layout_mut().heap_alloc(64, 1).unwrap();
//! image.push_thread(ThreadSpec::new("t0", "body").with_reg(Reg(0), base));
//! image.push_thread(ThreadSpec::new("t1", "body").with_reg(Reg(0), base + 8));
//!
//! let mut machine = Machine::new(MachineConfig::default(), &image);
//! let result = machine.run_to_completion().unwrap();
//! assert!(result.stats.hitm_events > 0);
//! ```

#![forbid(unsafe_code)]

pub mod addr;
pub mod alloc;
pub mod coherence;
pub mod event;
pub mod fasthash;
pub mod hook;
pub mod htm;
pub mod image;
pub mod machine;
pub mod mem;
pub mod memmap;
pub mod stats;
pub mod timing;
pub mod topology;

pub use addr::{line_of, line_offset, Addr, CACHE_LINE_SIZE};
pub use coherence::CoherenceDirectory;
pub use event::{HitmEvent, MemAccessKind};
pub use hook::{ExecHook, HookAction, HookCtx, MemOp};
pub use image::{ThreadSpec, WorkloadImage};
pub use machine::{CoreId, Machine, MachineConfig, QuantumYield, RunResult, RunStatus};
pub use memmap::{MemoryMap, PcClass, Region, RegionKind};
pub use stats::MachineStats;
pub use timing::{LatencyError, LatencyModel};
pub use topology::{
    ResolvedClass, SocketLatency, ThreadPlacement, Topology, TopologyError, TopologySpec,
};
