//! A bounded, double-buffered batch channel for pipelined record delivery.
//!
//! The paper's detection core runs *concurrently* with the application: HITM
//! records flow from the kernel driver into the user-space detector through a
//! fixed-size buffer, and the application never waits for the detector unless
//! that buffer fills up. This module reproduces the plumbing as a minimal
//! bounded SPSC channel: the producer (the machine/driver stage) pushes
//! record batches, the consumer (the detector stage) pops them, and the
//! capacity — two batches by default, the classic double buffer — bounds how
//! far the consumer may lag.
//!
//! What happens when the consumer lags a full `capacity` behind is the
//! [`OverflowPolicy`]:
//!
//! * [`OverflowPolicy::Backpressure`] blocks the producer until a slot frees
//!   up. Nothing is ever lost, so a pipelined run stays **byte-identical** to
//!   its inline equivalent — this is the policy `laser-core`'s deterministic
//!   session pipeline uses.
//! * [`OverflowPolicy::DropNewest`] rejects the batch instead, the way real
//!   PEBS hardware overflows a full buffer. The rejection is the producer's
//!   signal ([`SendOutcome::Dropped`]); accounting the loss belongs to the
//!   producer — the session folds it into the driver's statistics
//!   (`DriverStats::records_dropped`), which stays the single owner of drop
//!   counts. Lossy delivery trades determinism for a hard bound on producer
//!   latency.
//!
//! Both endpoints detect disconnection: a send into a closed channel returns
//! [`SendOutcome::Closed`], and a receive from a closed, drained channel
//! returns `None`, so neither stage can deadlock on a departed peer.
//!
//! # One channel per shard
//!
//! A sharded detector stage (`laser-core`'s `PipelineConfig::with_shards`)
//! is built from N independent instances of this channel, one per detector
//! worker: the machine stage routes each record batch across the shards and
//! offers every shard its sub-batch through its own `Sender`. The channel
//! itself is deliberately shard-oblivious — it stays a plain SPSC pipe, and
//! everything ordering-sensitive (routing, per-shard sequencing, the sorted
//! merge of shard results) lives with the session. What the channel does
//! guarantee is all the session needs: FIFO delivery per shard, so each
//! shard's record subsequence arrives in machine order, and per-shard
//! backpressure, so a lossless sharded run remains byte-identical to its
//! inline equivalent no matter how far individual shards lag.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};

/// What a bounded channel does when the consumer lags `capacity` batches
/// behind the producer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OverflowPolicy {
    /// Block the producer until the consumer frees a slot (lossless; keeps
    /// pipelined execution deterministic).
    #[default]
    Backpressure,
    /// Drop the offered batch (models PEBS buffer overflow;
    /// non-deterministic under load).
    DropNewest,
}

/// The result of offering a batch to a bounded channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendOutcome {
    /// The batch was queued for the consumer.
    Sent,
    /// The channel was full and the policy is [`OverflowPolicy::DropNewest`]:
    /// the batch was discarded. The producer owns accounting the loss.
    Dropped,
    /// The consumer is gone; the batch was discarded.
    Closed,
}

struct State<T> {
    queue: VecDeque<T>,
    senders: usize,
    receiver_alive: bool,
}

struct Shared<T> {
    state: Mutex<State<T>>,
    capacity: usize,
    policy: OverflowPolicy,
    not_empty: Condvar,
    not_full: Condvar,
}

/// Producer endpoint of a bounded channel (see [`bounded`]).
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// Consumer endpoint of a bounded channel (see [`bounded`]).
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// Create a bounded channel of `capacity` batches (clamped to at least 1)
/// with the given overflow `policy`. `capacity = 2` is the double buffer the
/// pipelined session uses: one batch in flight at the detector, one staged
/// behind it.
pub fn bounded<T>(capacity: usize, policy: OverflowPolicy) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        state: Mutex::new(State {
            queue: VecDeque::new(),
            senders: 1,
            receiver_alive: true,
        }),
        capacity: capacity.max(1),
        policy,
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

impl<T> Sender<T> {
    /// Offer one batch. Under [`OverflowPolicy::Backpressure`] this blocks
    /// while the channel is full; under [`OverflowPolicy::DropNewest`] a full
    /// channel discards the batch and returns [`SendOutcome::Dropped`].
    pub fn send(&self, item: T) -> SendOutcome {
        let mut state = self.shared.state.lock().unwrap(); // lint:allow(panic) — lock poisoning only follows a panic already unwinding this run
        loop {
            if !state.receiver_alive {
                return SendOutcome::Closed;
            }
            if state.queue.len() < self.shared.capacity {
                state.queue.push_back(item);
                self.shared.not_empty.notify_one();
                return SendOutcome::Sent;
            }
            match self.shared.policy {
                OverflowPolicy::DropNewest => {
                    return SendOutcome::Dropped;
                }
                OverflowPolicy::Backpressure => {
                    state = self.shared.not_full.wait(state).unwrap(); // lint:allow(panic) — lock poisoning only follows a panic already unwinding this run
                }
            }
        }
    }

    /// Whether the channel is currently full — i.e. whether the consumer has
    /// lagged a full `capacity` behind. A lossy producer can use this to
    /// account a drop *before* constructing the batch it would discard.
    pub fn is_full(&self) -> bool {
        let state = self.shared.state.lock().unwrap(); // lint:allow(panic) — lock poisoning only follows a panic already unwinding this run
        state.queue.len() >= self.shared.capacity
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.state.lock().unwrap().senders += 1; // lint:allow(panic) — lock poisoning only follows a panic already unwinding this run
        Sender {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut state = self.shared.state.lock().unwrap(); // lint:allow(panic) — lock poisoning only follows a panic already unwinding this run
        state.senders -= 1;
        if state.senders == 0 {
            // Wake a consumer blocked on an empty queue so it can observe the
            // disconnect and shut down.
            self.shared.not_empty.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Receive the next batch, blocking while the channel is empty. Returns
    /// `None` once every sender is gone and the queue is drained.
    pub fn recv(&self) -> Option<T> {
        let mut state = self.shared.state.lock().unwrap(); // lint:allow(panic) — lock poisoning only follows a panic already unwinding this run
        loop {
            if let Some(item) = state.queue.pop_front() {
                self.shared.not_full.notify_one();
                return Some(item);
            }
            if state.senders == 0 {
                return None;
            }
            state = self.shared.not_empty.wait(state).unwrap(); // lint:allow(panic) — lock poisoning only follows a panic already unwinding this run
        }
    }

    /// Receive without blocking: `None` when the queue is currently empty
    /// (whether or not senders remain).
    pub fn try_recv(&self) -> Option<T> {
        let mut state = self.shared.state.lock().unwrap(); // lint:allow(panic) — lock poisoning only follows a panic already unwinding this run
        let item = state.queue.pop_front();
        if item.is_some() {
            self.shared.not_full.notify_one();
        }
        item
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut state = self.shared.state.lock().unwrap(); // lint:allow(panic) — lock poisoning only follows a panic already unwinding this run
        state.receiver_alive = false;
        state.queue.clear();
        // Wake producers blocked on a full queue so they observe the close.
        self.shared.not_full.notify_all();
    }
}

impl<T> std::fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = self.shared.state.lock().unwrap(); // lint:allow(panic) — lock poisoning only follows a panic already unwinding this run
        f.debug_struct("Sender")
            .field("queued", &state.queue.len())
            .field("capacity", &self.shared.capacity)
            .field("policy", &self.shared.policy)
            .finish()
    }
}

impl<T> std::fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = self.shared.state.lock().unwrap(); // lint:allow(panic) — lock poisoning only follows a panic already unwinding this run
        f.debug_struct("Receiver")
            .field("queued", &state.queue.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn endpoints_are_send() {
        fn assert_send<T: Send>() {}
        assert_send::<Sender<Vec<u64>>>();
        assert_send::<Receiver<Vec<u64>>>();
    }

    #[test]
    fn fifo_order_is_preserved() {
        let (tx, rx) = bounded(4, OverflowPolicy::Backpressure);
        for i in 0..4 {
            assert_eq!(tx.send(i), SendOutcome::Sent);
        }
        assert_eq!(rx.recv(), Some(0));
        assert_eq!(rx.recv(), Some(1));
        assert_eq!(rx.try_recv(), Some(2));
        assert_eq!(rx.recv(), Some(3));
        assert_eq!(rx.try_recv(), None);
    }

    #[test]
    fn backpressure_blocks_until_the_consumer_catches_up() {
        let (tx, rx) = bounded(2, OverflowPolicy::Backpressure);
        assert_eq!(tx.send(1), SendOutcome::Sent);
        assert_eq!(tx.send(2), SendOutcome::Sent);
        assert!(tx.is_full());
        let producer = std::thread::spawn(move || tx.send(3));
        // The producer is parked on the full channel; draining one slot
        // releases it.
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(rx.recv(), Some(1));
        assert_eq!(producer.join().unwrap(), SendOutcome::Sent);
        assert_eq!(rx.recv(), Some(2));
        assert_eq!(rx.recv(), Some(3));
    }

    #[test]
    fn lossy_channel_drops_when_the_consumer_lags() {
        let (tx, rx) = bounded(2, OverflowPolicy::DropNewest);
        assert_eq!(tx.send(1), SendOutcome::Sent);
        assert_eq!(tx.send(2), SendOutcome::Sent);
        // The consumer has lagged a full capacity behind: the hardware model
        // overflows instead of stalling the application. The rejection is
        // the producer's signal to account the loss (the session routes it
        // into `DriverStats::records_dropped`).
        assert_eq!(tx.send(3), SendOutcome::Dropped);
        assert_eq!(tx.send(4), SendOutcome::Dropped);
        assert_eq!(rx.recv(), Some(1));
        assert_eq!(tx.send(5), SendOutcome::Sent);
        assert_eq!(rx.recv(), Some(2));
        assert_eq!(rx.recv(), Some(5));
    }

    #[test]
    fn consumer_sees_disconnect_after_draining() {
        let (tx, rx) = bounded(2, OverflowPolicy::Backpressure);
        tx.send(7);
        drop(tx);
        assert_eq!(rx.recv(), Some(7));
        assert_eq!(rx.recv(), None);
    }

    #[test]
    fn producer_sees_a_departed_consumer_instead_of_deadlocking() {
        let (tx, rx) = bounded(1, OverflowPolicy::Backpressure);
        assert_eq!(tx.send(1), SendOutcome::Sent);
        let blocked = std::thread::spawn(move || tx.send(2));
        std::thread::sleep(Duration::from_millis(20));
        drop(rx);
        assert_eq!(blocked.join().unwrap(), SendOutcome::Closed);
    }

    #[test]
    fn capacity_is_clamped_to_at_least_one() {
        let (tx, rx) = bounded(0, OverflowPolicy::DropNewest);
        assert_eq!(tx.send(1), SendOutcome::Sent);
        assert_eq!(tx.send(2), SendOutcome::Dropped);
        assert_eq!(rx.recv(), Some(1));
    }
}
