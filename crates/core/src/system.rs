//! The end-to-end LASER system (paper Section 6, Figure 8).
//!
//! [`Laser::run`] wires the pieces together the way the paper's deployment
//! does: the application runs on the simulated machine; the kernel driver
//! configures the PMU and ships stripped HITM records to the user-space
//! detector; the detector runs its pipeline online and, when the
//! false-sharing rate crosses a threshold, attaches the Pin-based SSB
//! instrumentation to the still-running program. Driver, detector and
//! instrumentation overhead are all charged to the machine, so the run's
//! cycle count is directly comparable to a native run — which is exactly how
//! the paper's Figures 10–14 are built.

use std::fmt;

use serde::{Deserialize, Serialize};

use laser_machine::machine::MachineError;
use laser_machine::{Machine, MachineConfig, RunResult, WorkloadImage};
use laser_pebs::driver::DriverStats;

use crate::config::LaserConfig;
use crate::observe::StopReason;
use crate::repair::{RepairPlan, SsbStats};
use crate::report::ContentionReport;
use crate::session::{LaserSession, SessionBuilder, StageOccupancy};

/// What LASERREPAIR did during a run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RepairSummary {
    /// Machine cycle count at which repair was attached.
    pub triggered_at_cycle: u64,
    /// The plan that was applied.
    pub plan: RepairPlan,
    /// Instrumentation statistics at the end of the run.
    pub stats: SsbStats,
}

/// Everything a LASER run produces.
#[derive(Debug, Clone)]
pub struct LaserOutcome {
    /// The detector's contention report.
    pub report: ContentionReport,
    /// The machine-level run result (cycles include all tool overhead).
    pub run: RunResult,
    /// Driver activity and overhead.
    pub driver_stats: DriverStats,
    /// Cycles the detector process consumed.
    pub detector_cycles: u64,
    /// Repair activity, if LASERREPAIR was triggered.
    pub repair: Option<RepairSummary>,
    /// Benchmark time in (dilated) seconds.
    pub elapsed_benchmark_seconds: f64,
    /// Per-stage busy times of a pipelined run (`None` for inline runs).
    /// Wall-clock bookkeeping only — it never feeds back into any simulated
    /// or reported quantity, so outcomes stay byte-identical across hosts.
    pub stage_occupancy: Option<StageOccupancy>,
}

impl LaserOutcome {
    /// Convenience: the end-to-end cycle count of the monitored run.
    pub fn cycles(&self) -> u64 {
        self.run.cycles
    }

    /// Normalized runtime against a native (un-monitored) run of the same
    /// workload.
    pub fn normalized_runtime(&self, native: &RunResult) -> f64 {
        self.run.cycles as f64 / native.cycles.max(1) as f64
    }
}

/// Errors from the LASER system.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LaserError {
    /// The underlying machine failed (e.g. the workload livelocked).
    Machine(MachineError),
    /// The session's [`Observer`](crate::observe::Observer) cancelled the run
    /// mid-flight (e.g. a step or wall-clock budget tripped); there is no
    /// complete outcome.
    Stopped(StopReason),
}

impl fmt::Display for LaserError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LaserError::Machine(e) => write!(f, "machine error: {e}"),
            LaserError::Stopped(reason) => write!(f, "run stopped by observer: {reason}"),
        }
    }
}

impl std::error::Error for LaserError {}

impl From<MachineError> for LaserError {
    fn from(e: MachineError) -> Self {
        LaserError::Machine(e)
    }
}

/// The LASER system: detection plus (optionally) online repair.
#[derive(Debug, Clone)]
pub struct Laser {
    config: LaserConfig,
}

impl Default for Laser {
    fn default() -> Self {
        Laser::new(LaserConfig::default())
    }
}

impl Laser {
    /// Create a system with the given configuration.
    pub fn new(config: LaserConfig) -> Self {
        Laser { config }
    }

    /// Start building a session: the canonical construction path. The
    /// builder unifies the LASER and machine configurations and optionally
    /// attaches an [`Observer`](crate::observe::Observer) to stream the run's
    /// [`LaserEvent`](crate::observe::LaserEvent)s; every other constructor
    /// on this type is a thin wrapper over it.
    pub fn builder() -> SessionBuilder {
        SessionBuilder::new()
    }

    /// The configuration in effect.
    pub fn config(&self) -> &LaserConfig {
        &self.config
    }

    /// Run `image` natively — no driver, no detector, no repair. This is the
    /// baseline every overhead figure is normalized against.
    ///
    /// # Errors
    /// Returns an error if the workload exceeds the machine's step budget.
    pub fn run_native(image: &WorkloadImage) -> Result<RunResult, LaserError> {
        Self::run_native_on(image, MachineConfig::default())
    }

    /// Like [`Laser::run_native`] but with an explicit machine configuration.
    ///
    /// # Errors
    /// Returns an error if the workload exceeds the machine's step budget.
    pub fn run_native_on(
        image: &WorkloadImage,
        machine_config: MachineConfig,
    ) -> Result<RunResult, LaserError> {
        let mut machine = Machine::new(machine_config, image);
        Ok(machine.run_to_completion()?)
    }

    /// Run `image` under LASER with the default machine configuration.
    ///
    /// # Errors
    /// Returns an error if the workload exceeds the machine's step budget.
    pub fn run(&self, image: &WorkloadImage) -> Result<LaserOutcome, LaserError> {
        self.run_on(image, MachineConfig::default())
    }

    /// Run `image` under LASER on a machine with `machine_config`.
    ///
    /// The whole run lives in a [`LaserSession`] — an owned, `Send`-able
    /// value — so callers that want to fan runs out across threads can use
    /// [`Laser::session_on`] and move the session to a worker instead.
    /// Callers that want to watch or cancel the run use [`Laser::builder`].
    ///
    /// # Errors
    /// Returns an error if the workload exceeds the machine's step budget.
    pub fn run_on(
        &self,
        image: &WorkloadImage,
        machine_config: MachineConfig,
    ) -> Result<LaserOutcome, LaserError> {
        self.session_on(image, machine_config).run()
    }

    /// Set up (but do not run) a session for `image` with the default machine
    /// configuration. Thin wrapper over [`Laser::builder`].
    pub fn session(&self, image: &WorkloadImage) -> LaserSession {
        self.session_on(image, MachineConfig::default())
    }

    /// Set up (but do not run) a session for `image` on a machine with
    /// `machine_config`. Thin wrapper over [`Laser::builder`].
    pub fn session_on(&self, image: &WorkloadImage, machine_config: MachineConfig) -> LaserSession {
        Laser::builder()
            .config(self.config.clone())
            .machine(machine_config)
            .build(image)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use laser_isa::inst::{Operand, Reg};
    use laser_isa::ProgramBuilder;
    use laser_machine::ThreadSpec;

    /// Two threads false-sharing adjacent counters in one cache line, using
    /// the memory-destination increment compilers emit for `counter[i]++`.
    fn false_sharing_image(iters: u64) -> WorkloadImage {
        let mut b = ProgramBuilder::new("fs_demo");
        b.source("fs_demo.c", 12);
        let entry = b.block("entry");
        let body = b.block("body");
        let exit = b.block("exit");
        b.switch_to(entry);
        b.movi(Reg(2), 0);
        b.jump(body);
        b.switch_to(body);
        b.mem_add(Reg(0), 0, Operand::Imm(1), 8);
        b.source("fs_demo.c", 13);
        b.addi(Reg(2), Reg(2), 1);
        b.cmp_lt(Reg(3), Reg(2), Operand::Imm(iters));
        b.branch(Reg(3), body, exit);
        b.switch_to(exit);
        b.halt();
        let program = b.finish();
        let mut image = WorkloadImage::new("fs_demo", program);
        let base = image.layout_mut().heap_alloc(64, 64).unwrap();
        image.push_thread(ThreadSpec::new("t0", "entry").with_reg(Reg(0), base));
        image.push_thread(ThreadSpec::new("t1", "entry").with_reg(Reg(0), base + 8));
        image
    }

    /// Four threads doing purely thread-private work.
    fn private_image(iters: u64) -> WorkloadImage {
        let mut b = ProgramBuilder::new("private");
        b.source("private.c", 3);
        let entry = b.block("entry");
        let body = b.block("body");
        let exit = b.block("exit");
        b.switch_to(entry);
        b.movi(Reg(2), 0);
        b.jump(body);
        b.switch_to(body);
        b.load(Reg(1), Reg(0), 0, 8);
        b.addi(Reg(1), Reg(1), 3);
        b.store(Operand::Reg(Reg(1)), Reg(0), 0, 8);
        b.addi(Reg(2), Reg(2), 1);
        b.cmp_lt(Reg(3), Reg(2), Operand::Imm(iters));
        b.branch(Reg(3), body, exit);
        b.switch_to(exit);
        b.halt();
        let program = b.finish();
        let mut image = WorkloadImage::new("private", program);
        for t in 0..4u64 {
            let a = image.layout_mut().heap_alloc(64, 64).unwrap();
            image.push_thread(ThreadSpec::new(format!("t{t}"), "entry").with_reg(Reg(0), a));
        }
        image
    }

    #[test]
    fn detects_and_repairs_false_sharing_online() {
        let image = false_sharing_image(4000);
        let native = Laser::run_native(&image).unwrap();
        let outcome = Laser::new(LaserConfig::default()).run(&image).unwrap();

        // The contending source line is reported.
        assert!(
            outcome.report.line("fs_demo.c", 12).is_some(),
            "report: {}",
            outcome.report.render()
        );
        // Repair was triggered and the run beat native execution.
        let repair = outcome.repair.as_ref().expect("repair should trigger");
        assert!(repair.plan.profitable);
        assert!(repair.stats.buffered_stores > 0);
        assert!(outcome.report.repair_invoked);
        assert!(
            outcome.cycles() < native.cycles,
            "repaired {} should beat native {}",
            outcome.cycles(),
            native.cycles
        );
    }

    #[test]
    fn detection_only_mode_reports_without_repair() {
        let image = false_sharing_image(3000);
        let outcome = Laser::new(LaserConfig::detection_only())
            .run(&image)
            .unwrap();
        assert!(outcome.repair.is_none());
        assert!(!outcome.report.repair_invoked);
        assert!(!outcome.report.lines.is_empty());
        assert!(outcome.driver_stats.records_sampled > 0);
    }

    #[test]
    fn uncontended_workload_has_negligible_overhead() {
        let image = private_image(3000);
        let native = Laser::run_native(&image).unwrap();
        assert_eq!(native.stats.hitm_events, 0);
        let outcome = Laser::new(LaserConfig::default()).run(&image).unwrap();
        let normalized = outcome.normalized_runtime(&native);
        assert!(normalized < 1.02, "overhead too high: {normalized}");
        assert!(outcome.report.lines.is_empty());
        assert!(outcome.repair.is_none());
    }

    #[test]
    fn native_run_is_deterministic() {
        let image = false_sharing_image(1000);
        let a = Laser::run_native(&image).unwrap();
        let b = Laser::run_native(&image).unwrap();
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.stats, b.stats);
    }

    #[test]
    fn laser_run_is_deterministic_given_seed() {
        let image = false_sharing_image(1000);
        let l = Laser::new(LaserConfig::default().with_seed(9));
        let a = l.run(&image).unwrap();
        let b = l.run(&image).unwrap();
        assert_eq!(a.cycles(), b.cycles());
        assert_eq!(a.report, b.report);
    }
}
