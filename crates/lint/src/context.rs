//! Item-context tracking on top of the token stream: which tokens live in
//! test code, what role a file plays in the workspace, and where the
//! `// lint:allow(<rule>) — <reason>` escape hatches are.

use std::collections::{BTreeMap, BTreeSet};

use crate::lexer::Token;
use crate::rules::RULES;
use crate::Finding;

/// What a file is *for*, derived from its workspace-relative path. Rules use
/// this to scope themselves: panics are fine in a CLI binary, wall-clock reads
/// are fine in the benchmarking harness's own binary, nothing is fine in
/// engine code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileRole {
    /// Library code of an engine crate: simulation, detection, emission. The
    /// strictest role — every rule applies.
    Lib,
    /// A binary target (`src/bin/…`, `src/main.rs`, `build.rs`): process
    /// owns its stdout/stderr and may measure wall time or panic on bad
    /// input, so rules 3 and 5 do not apply.
    Bin,
    /// Test-like code: `tests/`, `benches/`, `examples/`, `fixtures/`,
    /// `tests.rs`. Only the `unsafe-code` rule applies.
    TestLike,
    /// Offline stand-ins for third-party crates under `shims/`. They mirror
    /// external APIs (criterion measures wall time, asserts like the real
    /// one), so rules 3–5 do not apply; hashing and iteration rules do.
    Shim,
}

impl FileRole {
    /// Classify `path` (workspace-relative, `/`-separated).
    pub fn of_path(path: &str) -> FileRole {
        let components: Vec<&str> = path.split('/').collect();
        let file = components.last().copied().unwrap_or("");
        let dir_is = |name: &str| components.iter().rev().skip(1).any(|c| *c == name);
        if dir_is("tests") || dir_is("benches") || dir_is("examples") || dir_is("fixtures") {
            return FileRole::TestLike;
        }
        if file == "tests.rs" {
            return FileRole::TestLike;
        }
        if dir_is("bin") || file == "main.rs" || file == "build.rs" {
            return FileRole::Bin;
        }
        if components.first() == Some(&"shims") {
            return FileRole::Shim;
        }
        FileRole::Lib
    }
}

/// An in-tree `lint:allow` annotation, parsed from a comment.
#[derive(Debug, Clone)]
pub struct Allow {
    /// Rule ids named in the annotation.
    pub rules: Vec<String>,
    /// Source lines the annotation covers (its own line, and — for a
    /// standalone comment — the next line that carries code).
    pub lines: Vec<u32>,
    /// Line the annotation itself is on.
    pub at_line: u32,
    pub col: u32,
    /// Whether a written reason follows the rule list.
    pub has_reason: bool,
}

/// Everything the rules need to know about one file.
pub struct FileCtx {
    pub path: String,
    pub role: FileRole,
    /// Non-comment tokens, in order.
    pub code: Vec<Token>,
    /// Parallel to `code`: true when the token is inside `#[cfg(test)]` /
    /// `#[test]` / `mod tests` regions.
    pub in_test: Vec<bool>,
    /// rule id → set of source lines where that rule is allowed.
    allowed: BTreeMap<String, BTreeSet<u32>>,
    /// Findings produced while parsing the annotations themselves
    /// (missing reason, unknown rule id).
    pub allow_findings: Vec<Finding>,
}

impl FileCtx {
    /// Lex and analyze one file.
    pub fn new(path: &str, source: &str) -> FileCtx {
        let tokens = crate::lexer::lex(source);
        let role = FileRole::of_path(path);
        let code: Vec<Token> = tokens.iter().filter(|t| !t.is_comment()).cloned().collect();
        let in_test = test_mask(&code);
        let (allowed, allow_findings) = collect_allows(path, &tokens, &code);
        FileCtx {
            path: path.to_string(),
            role,
            code,
            in_test,
            allowed,
            allow_findings,
        }
    }

    /// True if `rule` is allowed (annotated) on `line`.
    pub fn is_allowed(&self, rule: &str, line: u32) -> bool {
        self.allowed
            .get(rule)
            .is_some_and(|lines| lines.contains(&line))
    }
}

/// Mark every token inside test-only items: an item annotated `#[cfg(test)]`
/// (or any `cfg` whose predicate mentions `test`), `#[test]`-attributed
/// functions, and `mod tests { … }` bodies.
fn test_mask(code: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; code.len()];
    let mut i = 0usize;
    while i < code.len() {
        // Outer attribute `#[…]` (not the inner `#![…]` form).
        if code[i].is_punct('#') && i + 1 < code.len() && code[i + 1].is_punct('[') {
            let Some(close) = matching(code, i + 1, '[', ']') else {
                break;
            };
            if attr_is_testish(&code[i + 2..close]) {
                let end = item_end(code, close + 1);
                for m in mask.iter_mut().take(end + 1).skip(i) {
                    *m = true;
                }
                i = end + 1;
                continue;
            }
            i = close + 1;
            continue;
        }
        if code[i].is_ident("mod") && i + 1 < code.len() && code[i + 1].is_ident("tests") {
            let end = item_end(code, i + 2);
            for m in mask.iter_mut().take(end + 1).skip(i) {
                *m = true;
            }
            i = end + 1;
            continue;
        }
        i += 1;
    }
    mask
}

/// Does the attribute body (tokens between `#[` and `]`) gate on tests?
/// Catches `test`, `cfg(test)`, `cfg(all(test, …))`, `cfg_attr(test, …)`.
fn attr_is_testish(body: &[Token]) -> bool {
    match body.first() {
        Some(t) if t.is_ident("test") && body.len() == 1 => true,
        Some(t) if t.is_ident("cfg") || t.is_ident("cfg_attr") => {
            body.iter().any(|t| t.is_ident("test"))
        }
        _ => false,
    }
}

/// Find the matching close delimiter for the opener at `open_idx`.
fn matching(code: &[Token], open_idx: usize, open: char, close: char) -> Option<usize> {
    let mut depth = 0i64;
    for (j, t) in code.iter().enumerate().skip(open_idx) {
        if t.is_punct(open) {
            depth += 1;
        } else if t.is_punct(close) {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

/// Starting at `from` (just past an attribute or `mod tests`), find the index
/// of the token that ends the item: the matching `}` of its body, or a `;`
/// for body-less items. Skips over any further attributes.
fn item_end(code: &[Token], from: usize) -> usize {
    let mut i = from;
    let mut paren = 0i64;
    let mut bracket = 0i64;
    while i < code.len() {
        let t = &code[i];
        if t.is_punct('(') {
            paren += 1;
        } else if t.is_punct(')') {
            paren -= 1;
        } else if t.is_punct('[') {
            bracket += 1;
        } else if t.is_punct(']') {
            bracket -= 1;
        } else if paren == 0 && bracket == 0 {
            if t.is_punct(';') {
                return i;
            }
            if t.is_punct('{') {
                return matching(code, i, '{', '}').unwrap_or(code.len() - 1);
            }
        }
        i += 1;
    }
    code.len().saturating_sub(1)
}

/// Parse every `lint:allow(rule, …) — reason` annotation out of the comment
/// tokens. Returns the per-rule allowed-line sets plus findings for malformed
/// annotations (the acceptance bar: every allow carries a written reason).
fn collect_allows(
    path: &str,
    tokens: &[Token],
    code: &[Token],
) -> (BTreeMap<String, BTreeSet<u32>>, Vec<Finding>) {
    let mut allowed: BTreeMap<String, BTreeSet<u32>> = BTreeMap::new();
    let mut findings = Vec::new();
    for t in tokens {
        if !t.is_comment() {
            continue;
        }
        // Doc comments (`///`, `//!`, `/**`, `/*!`) are rustdoc prose — an
        // annotation only counts in a plain comment, so documentation can
        // *talk about* the syntax without minting an allowance.
        if t.text.starts_with("///")
            || t.text.starts_with("//!")
            || t.text.starts_with("/**")
            || t.text.starts_with("/*!")
        {
            continue;
        }
        let Some(allow) = parse_allow(t, code) else {
            continue;
        };
        if !allow.has_reason {
            findings.push(Finding {
                rule: "bad-allow",
                path: path.to_string(),
                line: allow.at_line,
                col: allow.col,
                message: "lint:allow annotation has no written reason; append `— <why this is \
                          safe>`"
                    .to_string(),
            });
        }
        for rule in &allow.rules {
            if !RULES.iter().any(|r| r.id == rule) {
                findings.push(Finding {
                    rule: "bad-allow",
                    path: path.to_string(),
                    line: allow.at_line,
                    col: allow.col,
                    message: format!("lint:allow names unknown rule `{rule}`"),
                });
                continue;
            }
            let entry = allowed.entry(rule.clone()).or_default();
            for line in &allow.lines {
                entry.insert(*line);
            }
        }
    }
    (allowed, findings)
}

/// Parse one comment token as an allow annotation, if it contains one.
fn parse_allow(comment: &Token, code: &[Token]) -> Option<Allow> {
    let text = &comment.text;
    let start = text.find("lint:allow(")?;
    let after = &text[start + "lint:allow(".len()..];
    let close = after.find(')')?;
    let rules: Vec<String> = after[..close]
        .split(',')
        .map(|r| r.trim().to_string())
        .filter(|r| !r.is_empty())
        .collect();
    let reason = after[close + 1..]
        .trim_start_matches([' ', '\t', '—', '–', '-', ':', '*'])
        .trim();
    // Coverage: the annotation's own line, plus — when the comment stands on
    // a line of its own — the next line that carries code.
    let mut lines = vec![comment.line];
    let own_line_has_code = code
        .iter()
        .any(|t| t.line == comment.line && t.col < comment.col);
    if !own_line_has_code {
        if let Some(next) = code.iter().map(|t| t.line).find(|&l| l > comment.line) {
            lines.push(next);
        }
    }
    Some(Allow {
        rules,
        lines,
        at_line: comment.line,
        col: comment.col,
        has_reason: !reason.is_empty(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::TokenKind;

    fn ctx(src: &str) -> FileCtx {
        FileCtx::new("crates/x/src/lib.rs", src)
    }

    #[test]
    fn roles_from_paths() {
        assert_eq!(FileRole::of_path("crates/core/src/lib.rs"), FileRole::Lib);
        assert_eq!(
            FileRole::of_path("crates/bench/src/bin/experiments.rs"),
            FileRole::Bin
        );
        assert_eq!(FileRole::of_path("crates/lint/src/main.rs"), FileRole::Bin);
        assert_eq!(
            FileRole::of_path("tests/campaign_determinism.rs"),
            FileRole::TestLike
        );
        assert_eq!(
            FileRole::of_path("crates/bench/benches/fig3.rs"),
            FileRole::TestLike
        );
        assert_eq!(
            FileRole::of_path("crates/machine/src/machine/tests.rs"),
            FileRole::TestLike
        );
        assert_eq!(
            FileRole::of_path("crates/lint/fixtures/bad/panic.rs"),
            FileRole::TestLike
        );
        assert_eq!(
            FileRole::of_path("examples/quickstart.rs"),
            FileRole::TestLike
        );
        assert_eq!(FileRole::of_path("shims/rand/src/lib.rs"), FileRole::Shim);
        assert_eq!(FileRole::of_path("src/lib.rs"), FileRole::Lib);
    }

    #[test]
    fn cfg_test_module_is_masked() {
        let c = ctx("fn live() {}\n#[cfg(test)]\nmod tests {\n fn t() {}\n}\nfn live2() {}");
        let live: Vec<&str> = c
            .code
            .iter()
            .zip(&c.in_test)
            .filter(|(t, &m)| !m && t.kind == TokenKind::Ident)
            .map(|(t, _)| t.text.as_str())
            .collect();
        assert!(live.contains(&"live"));
        assert!(live.contains(&"live2"));
        assert!(!live.contains(&"t"));
    }

    #[test]
    fn bare_mod_tests_is_masked() {
        let c = ctx("mod tests { fn helper() {} }\nfn live() {}");
        let masked: Vec<&str> = c
            .code
            .iter()
            .zip(&c.in_test)
            .filter(|(_, &m)| m)
            .map(|(t, _)| t.text.as_str())
            .collect();
        assert!(masked.contains(&"helper"));
        assert!(!masked.contains(&"live"));
    }

    #[test]
    fn test_attribute_masks_single_fn() {
        let c = ctx("#[test]\nfn a_test() { x(); }\nfn live() {}");
        let masked: Vec<&str> = c
            .code
            .iter()
            .zip(&c.in_test)
            .filter(|(_, &m)| m)
            .map(|(t, _)| t.text.as_str())
            .collect();
        assert!(masked.contains(&"a_test"));
        assert!(!masked.contains(&"live"));
    }

    #[test]
    fn cfg_all_test_is_masked() {
        let c = ctx("#[cfg(all(test, feature = \"x\"))]\nmod helpers { fn h() {} }");
        assert!(c.in_test.iter().any(|&m| m));
    }

    #[test]
    fn non_test_cfg_is_not_masked() {
        let c = ctx("#[cfg(feature = \"x\")]\nfn live() {}");
        assert!(c.in_test.iter().all(|&m| !m));
    }

    #[test]
    fn trailing_allow_covers_its_own_line() {
        let c = ctx("fn f() {\n    x.unwrap(); // lint:allow(panic) — infallible here\n}");
        assert!(c.is_allowed("panic", 2));
        assert!(!c.is_allowed("panic", 3));
        assert!(c.allow_findings.is_empty());
    }

    #[test]
    fn standalone_allow_covers_next_code_line() {
        let c = ctx("// lint:allow(panic) — checked above\n\nx.unwrap();");
        assert!(c.is_allowed("panic", 3));
    }

    #[test]
    fn allow_without_reason_is_a_finding() {
        let c = ctx("// lint:allow(panic)\nx.unwrap();");
        assert_eq!(c.allow_findings.len(), 1);
        assert_eq!(c.allow_findings[0].rule, "bad-allow");
    }

    #[test]
    fn allow_with_unknown_rule_is_a_finding() {
        let c = ctx("// lint:allow(no-such-rule) — whatever\nx();");
        assert_eq!(c.allow_findings.len(), 1);
        assert!(c.allow_findings[0].message.contains("no-such-rule"));
    }

    #[test]
    fn allow_lists_multiple_rules() {
        let c = ctx("// lint:allow(panic, wall-clock) — both fine here\nf();");
        assert!(c.is_allowed("panic", 2));
        assert!(c.is_allowed("wall-clock", 2));
    }

    #[test]
    fn allow_inside_string_literal_is_ignored() {
        let c = ctx("let s = \"lint:allow(panic) — nope\";\nx.unwrap();");
        assert!(!c.is_allowed("panic", 1));
        assert!(!c.is_allowed("panic", 2));
    }
}
