//! Sheriff-Detect and Sheriff-Protect models (Liu & Berger, OOPSLA'11).
//!
//! Sheriff runs each thread as a separate process with a private address
//! space; private pages are twinned, diffed and merged at synchronization
//! points. The LASER paper leans on three consequences (Sections 5 and 7.3):
//!
//! 1. **Compatibility** — much of the suite either crashes under Sheriff or
//!    uses constructs it does not support (spin locks, OpenMP); only about
//!    half the workloads run at all.
//! 2. **Performance** — every synchronization operation pays for page
//!    protection, twinning and diffing, so synchronization-heavy programs slow
//!    down dramatically, while programs that rarely synchronize are cheap.
//!    Address-space isolation also *removes* false-sharing misses whether or
//!    not anything is detected, which is why Sheriff "fixes" `histogram'` and
//!    `linear_regression` without reporting them.
//! 3. **Reporting** — Sheriff-Detect observes write interleavings only when
//!    twins are compared at synchronization points, and reports the
//!    *allocation site* (the object), not the contending source lines.
//!
//! The model reproduces those three behaviours on top of a native simulated
//! run: the compatibility matrix comes from the workload spec, the runtime is
//! the native runtime minus the coherence cycles isolation removes plus the
//! per-synchronization tax, and detection scans the ground-truth write-HITM
//! events for heap lines written by multiple threads — but only if the
//! program synchronizes at all during its parallel phase.

use std::collections::{BTreeMap, BTreeSet};

use serde::{Deserialize, Serialize};

use laser_core::LaserError;
use laser_isa::MemAccessSets;
use laser_machine::{line_of, Addr, Machine, MachineConfig, MemAccessKind};
use laser_workloads::{BuildOptions, SheriffCompat, WorkloadSpec};

/// Which Sheriff scheme to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SheriffMode {
    /// Sheriff-Detect: periodic write-protection and twin comparison to report
    /// falsely-shared objects.
    Detect,
    /// Sheriff-Protect: isolation only, no detection.
    Protect,
}

/// Why a workload could not be run under Sheriff.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SheriffFailure {
    /// The benchmark encounters a runtime error ("x" in the paper's Table 1).
    Crash,
    /// The benchmark uses unsupported constructs such as spin locks or OpenMP
    /// ("i" in Table 1).
    Incompatible,
}

/// Cost model of the Sheriff execution environment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SheriffConfig {
    /// Cycles charged per synchronization operation under Sheriff-Protect
    /// (commit/merge of private pages).
    pub per_sync_cycles_protect: u64,
    /// Cycles charged per synchronization operation under Sheriff-Detect
    /// (adds page write-protection and twin diffing).
    pub per_sync_cycles_detect: u64,
    /// Fixed start-up cost (process creation, segregated heap setup).
    pub startup_cycles: u64,
    /// Minimum number of multi-thread writes to a heap line before
    /// Sheriff-Detect reports the object.
    pub detect_write_threshold: u64,
}

impl Default for SheriffConfig {
    fn default() -> Self {
        SheriffConfig {
            per_sync_cycles_protect: 2_800,
            per_sync_cycles_detect: 7_000,
            startup_cycles: 2_000,
            detect_write_threshold: 50,
        }
    }
}

/// A completed Sheriff run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SheriffRun {
    /// Estimated cycles under the Sheriff execution model.
    pub cycles: u64,
    /// Cycles of the corresponding native run.
    pub native_cycles: u64,
    /// Cache lines (allocation-site granularity) Sheriff-Detect reported as
    /// falsely shared; always empty for Sheriff-Protect.
    pub reported_lines: Vec<Addr>,
    /// Synchronization operations observed (what the slowdown scales with).
    pub sync_ops: u64,
    /// Coherence cycles that address-space isolation removed (why Sheriff can
    /// accidentally "fix" false sharing it never detected).
    pub removed_coherence_cycles: u64,
}

impl SheriffRun {
    /// Runtime normalized to native execution.
    pub fn normalized_runtime(&self) -> f64 {
        self.cycles as f64 / self.native_cycles.max(1) as f64
    }
}

/// Outcome of attempting to run a workload under Sheriff.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SheriffOutcome {
    /// Which scheme was run.
    pub mode: SheriffMode,
    /// The run, or the reason it could not happen.
    pub result: Result<SheriffRun, SheriffFailure>,
}

impl SheriffOutcome {
    /// True if the workload ran to completion under Sheriff.
    pub fn ran(&self) -> bool {
        self.result.is_ok()
    }
}

/// The Sheriff baseline.
#[derive(Debug, Clone, Default)]
pub struct Sheriff {
    config: SheriffConfig,
}

impl Sheriff {
    /// Create the baseline with an explicit cost model.
    pub fn new(config: SheriffConfig) -> Self {
        Sheriff { config }
    }

    /// The cost model in effect.
    pub fn config(&self) -> &SheriffConfig {
        &self.config
    }

    /// Run `spec` under the given Sheriff scheme on the default
    /// (single-socket) machine.
    ///
    /// # Errors
    /// Returns an error if the underlying simulation exceeds its step budget;
    /// Sheriff-specific failures (crash / incompatibility) are reported inside
    /// the [`SheriffOutcome`] instead.
    pub fn run(
        &self,
        spec: &WorkloadSpec,
        opts: &BuildOptions,
        mode: SheriffMode,
    ) -> Result<SheriffOutcome, LaserError> {
        self.run_on(spec, opts, mode, MachineConfig::default())
    }

    /// Like [`Sheriff::run`], on an explicit machine configuration (e.g. a
    /// multi-socket topology preset). The isolation model removes local-rate
    /// coherence cycles per HITM; on a multi-socket machine that makes it a
    /// conservative estimate of what address-space isolation saves.
    ///
    /// # Errors
    /// Returns an error if the underlying simulation exceeds its step budget.
    pub fn run_on(
        &self,
        spec: &WorkloadSpec,
        opts: &BuildOptions,
        mode: SheriffMode,
        machine_config: MachineConfig,
    ) -> Result<SheriffOutcome, LaserError> {
        match spec.sheriff {
            SheriffCompat::Crash => {
                return Ok(SheriffOutcome {
                    mode,
                    result: Err(SheriffFailure::Crash),
                });
            }
            SheriffCompat::Incompatible => {
                return Ok(SheriffOutcome {
                    mode,
                    result: Err(SheriffFailure::Incompatible),
                });
            }
            SheriffCompat::Works => {}
        }

        let image = spec.build(opts);
        let lat = machine_config.latency.clone();
        let mut machine = Machine::new(machine_config, &image);
        let native = machine.run_to_completion().map_err(LaserError::Machine)?;
        let events = machine.take_hitm_events();
        let memsets = MemAccessSets::analyze(image.program());

        // Address-space isolation removes cross-thread coherence misses: each
        // process keeps touching its own copy of the line.
        let removed_coherence_cycles = native.stats.hitm_events * (lat.hitm - lat.l1_hit);
        // ... but every synchronization operation pays for protection,
        // twinning and diffing.
        let sync_ops = native.stats.atomics + native.stats.fences;
        let per_sync = match mode {
            SheriffMode::Protect => self.config.per_sync_cycles_protect,
            SheriffMode::Detect => self.config.per_sync_cycles_detect,
        };
        let overhead =
            sync_ops * per_sync / (machine.num_cores() as u64).max(1) + self.config.startup_cycles;
        let cycles = native.cycles.saturating_sub(removed_coherence_cycles) + overhead;

        // Sheriff-Detect's twin comparison happens at synchronization points,
        // so a parallel phase that never synchronizes is never sampled.
        let mut reported_lines = Vec::new();
        if mode == SheriffMode::Detect && sync_ops > 0 {
            let heap = image.memory_map();
            let mut writers: BTreeMap<Addr, (BTreeSet<usize>, u64, BTreeSet<u64>)> =
                BTreeMap::new();
            for e in &events {
                if e.kind != MemAccessKind::Store && !memsets.is_store(e.pc) {
                    continue;
                }
                if !heap.is_data(e.addr) {
                    continue;
                }
                let entry = writers.entry(line_of(e.addr)).or_default();
                entry.0.insert(e.core.0);
                entry.1 += 1;
                entry.2.insert(e.addr & !7);
            }
            reported_lines = writers
                .into_iter()
                .filter(|(_, (cores, count, words))| {
                    cores.len() >= 2
                        && *count >= self.config.detect_write_threshold
                        && words.len() >= 2
                })
                .map(|(line, _)| line)
                .collect();
            reported_lines.sort_unstable();
        }

        Ok(SheriffOutcome {
            mode,
            result: Ok(SheriffRun {
                cycles,
                native_cycles: native.cycles,
                reported_lines,
                sync_ops,
                removed_coherence_cycles,
            }),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use laser_workloads::find;

    fn small() -> BuildOptions {
        BuildOptions::scaled(0.15)
    }

    #[test]
    fn incompatible_and_crashing_workloads_do_not_run() {
        let sheriff = Sheriff::default();
        let dedup = find("dedup").unwrap();
        let out = sheriff.run(&dedup, &small(), SheriffMode::Detect).unwrap();
        assert_eq!(out.result, Err(SheriffFailure::Incompatible));
        let barnes = find("barnes").unwrap();
        let out = sheriff
            .run(&barnes, &small(), SheriffMode::Protect)
            .unwrap();
        assert_eq!(out.result, Err(SheriffFailure::Crash));
        assert!(!out.ran());
    }

    #[test]
    fn isolation_fixes_false_sharing_it_never_detects() {
        // linear_regression never synchronizes inside its parallel phase, so
        // Sheriff-Detect reports nothing — yet its isolation removes the
        // false-sharing misses and the program speeds up (paper Section 7.3).
        let sheriff = Sheriff::default();
        let lreg = find("linear_regression").unwrap();
        let out = sheriff.run(&lreg, &small(), SheriffMode::Detect).unwrap();
        let run = out.result.unwrap();
        assert!(
            run.reported_lines.is_empty(),
            "Sheriff-Detect should miss linear_regression"
        );
        assert!(run.removed_coherence_cycles > 0);
        assert!(
            run.normalized_runtime() < 1.0,
            "isolation should speed it up"
        );
    }

    #[test]
    fn detects_false_sharing_in_synchronizing_workloads() {
        let sheriff = Sheriff::default();
        let ri = find("reverse_index").unwrap();
        let out = sheriff.run(&ri, &small(), SheriffMode::Detect).unwrap();
        let run = out.result.unwrap();
        assert!(
            !run.reported_lines.is_empty(),
            "reverse_index synchronizes, so its use_len line should be reported"
        );
    }

    #[test]
    fn sync_heavy_workloads_slow_down_dramatically() {
        let sheriff = Sheriff::default();
        let opts = BuildOptions::scaled(0.5);
        let water = find("water_nsquared").unwrap();
        let protect = sheriff
            .run(&water, &opts, SheriffMode::Protect)
            .unwrap()
            .result
            .unwrap();
        let detect = sheriff
            .run(&water, &opts, SheriffMode::Detect)
            .unwrap()
            .result
            .unwrap();
        assert!(
            protect.normalized_runtime() > 1.3,
            "{}",
            protect.normalized_runtime()
        );
        assert!(detect.normalized_runtime() > protect.normalized_runtime());

        // A workload with almost no synchronization stays cheap.
        let swaptions = find("swaptions").unwrap();
        let cheap = sheriff
            .run(&swaptions, &opts, SheriffMode::Protect)
            .unwrap()
            .result
            .unwrap();
        assert!(
            cheap.normalized_runtime() < 1.2,
            "{}",
            cheap.normalized_runtime()
        );
    }
}
